//! Declarative sweep enumeration: a [`ConfigMatrix`] is an axis product
//! (presets × seeds × scales × core counts × memory backends × extra
//! latencies) over a pinned base [`GcConfig`], optionally filtered; it
//! lowers to a [`JobSet`] — the canonical, order-stable, deduplicated
//! list of [`SimJob`]s an executor runs.
//!
//! Canonical form: lowering preserves the axis nesting order (preset
//! outermost, extra latency innermost — the order every hand-rolled
//! sweep loop used), and drops any job whose ledger `config_hash`
//! already appeared. First occurrence wins, so a job set's *sequence*
//! matches what the old per-binary loops produced, while its *identity*
//! — [`JobSet::digest`], an order-insensitive hash over the sorted
//! config hashes — is stable under axis reordering (proptested in
//! `tests/jobset.rs`).

use hwgc_core::GcConfig;
use hwgc_memsim::{MemBackendKind, MemConfig};
use hwgc_workloads::{Preset, WorkloadSpec};

use crate::job::SimJob;

/// Axis product + pins + filters; see the module docs.
pub struct ConfigMatrix {
    presets: Vec<Preset>,
    seeds: Vec<u64>,
    scales: Vec<f64>,
    cores: Vec<usize>,
    /// Memory-backend axis: each entry is a backend plus the extra
    /// latencies to sweep under it (the Figure 6 knob is per-backend —
    /// `fixed` sweeps +0/+20 while the DRAM backends pin +0).
    backends: Vec<(MemBackendKind, Vec<u32>)>,
    base: GcConfig,
    #[allow(clippy::type_complexity)]
    filters: Vec<Box<dyn Fn(&SimJob) -> bool>>,
}

impl ConfigMatrix {
    /// A single-point matrix over `base`: one preset-less job per axis
    /// value added later. Every axis defaults to the base config's own
    /// value, so only the swept dimensions need declaring.
    pub fn new(base: GcConfig) -> ConfigMatrix {
        ConfigMatrix {
            presets: Vec::new(),
            seeds: vec![42],
            scales: vec![1.0],
            cores: vec![base.n_cores],
            backends: vec![(base.mem.backend, vec![base.mem.extra_latency])],
            base,
            filters: Vec::new(),
        }
    }

    /// The workload presets to sweep (required — an empty matrix lowers
    /// to an empty job set).
    pub fn presets(mut self, presets: impl IntoIterator<Item = Preset>) -> ConfigMatrix {
        self.presets = presets.into_iter().collect();
        self
    }

    /// Workload seeds (default `[42]`, the harness's fixed seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> ConfigMatrix {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Workload scale multipliers (default `[1.0]`).
    pub fn scales(mut self, scales: impl IntoIterator<Item = f64>) -> ConfigMatrix {
        self.scales = scales.into_iter().collect();
        self
    }

    /// Core counts (default: the base config's).
    pub fn cores(mut self, cores: impl IntoIterator<Item = usize>) -> ConfigMatrix {
        self.cores = cores.into_iter().collect();
        self
    }

    /// Memory-backend axis with per-backend extra-latency sweeps
    /// (default: the base config's backend at its own extra latency).
    pub fn backends(
        mut self,
        backends: impl IntoIterator<Item = (MemBackendKind, Vec<u32>)>,
    ) -> ConfigMatrix {
        self.backends = backends.into_iter().collect();
        self
    }

    /// Keep only jobs the predicate accepts (applied before dedupe).
    pub fn filter(mut self, pred: impl Fn(&SimJob) -> bool + 'static) -> ConfigMatrix {
        self.filters.push(Box::new(pred));
        self
    }

    /// Lower to the canonical deduplicated [`JobSet`].
    pub fn lower(&self) -> JobSet {
        let mut jobs = Vec::new();
        for &preset in &self.presets {
            for &seed in &self.seeds {
                for &scale in &self.scales {
                    for &n_cores in &self.cores {
                        for (backend, extras) in &self.backends {
                            for &extra_latency in extras {
                                let job = SimJob {
                                    spec: WorkloadSpec {
                                        preset,
                                        seed,
                                        scale,
                                    },
                                    cfg: GcConfig {
                                        n_cores,
                                        mem: MemConfig {
                                            backend: *backend,
                                            extra_latency,
                                            ..self.base.mem
                                        },
                                        ..self.base
                                    },
                                };
                                if self.filters.iter().all(|f| f(&job)) {
                                    jobs.push(job);
                                }
                            }
                        }
                    }
                }
            }
        }
        JobSet::from_jobs(jobs)
    }
}

/// The canonical, order-stable, content-deduplicated job list. See the
/// module docs for the canonical-form guarantees.
#[derive(Debug, Clone)]
pub struct JobSet {
    jobs: Vec<SimJob>,
    hashes: Vec<u64>,
    duplicates: usize,
}

impl JobSet {
    /// Dedupe `jobs` by ledger `config_hash`, first occurrence winning.
    pub fn from_jobs(jobs: impl IntoIterator<Item = SimJob>) -> JobSet {
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        let mut hashes = Vec::new();
        let mut duplicates = 0;
        for job in jobs {
            let h = job.config_hash();
            if seen.insert(h) {
                kept.push(job);
                hashes.push(h);
            } else {
                duplicates += 1;
            }
        }
        JobSet {
            jobs: kept,
            hashes,
            duplicates,
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in canonical (lowering) order.
    pub fn jobs(&self) -> &[SimJob] {
        &self.jobs
    }

    /// Per-job ledger config hashes, parallel to [`JobSet::jobs`].
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Jobs dropped by dedupe during construction.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// The config hashes in sorted order — the set's order-insensitive
    /// identity.
    pub fn canonical_hashes(&self) -> Vec<u64> {
        let mut hs = self.hashes.clone();
        hs.sort_unstable();
        hs
    }

    /// FNV-1a over the sorted config hashes: one u64 naming the job
    /// set's *content*, independent of lowering order. The resumption
    /// journal records it so a journal can never be replayed against a
    /// different sweep.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for hash in self.canonical_hashes() {
            for byte in hash.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// The first `n` jobs as their own set (for partial-sweep probes;
    /// prefix of the canonical order, so indices line up).
    pub fn take(&self, n: usize) -> JobSet {
        JobSet {
            jobs: self.jobs[..n.min(self.jobs.len())].to_vec(),
            hashes: self.hashes[..n.min(self.hashes.len())].to_vec(),
            duplicates: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_memsim::DramConfig;

    #[test]
    fn lowering_order_matches_the_hand_rolled_loops() {
        let set = ConfigMatrix::new(GcConfig::default())
            .presets([Preset::Compress, Preset::Javac])
            .cores([1, 4])
            .lower();
        let labels: Vec<String> = set.jobs().iter().map(SimJob::label).collect();
        assert_eq!(labels.len(), 4);
        assert!(labels[0].starts_with("compress/seed42/scale1@1c"));
        assert!(labels[1].starts_with("compress/seed42/scale1@4c"));
        assert!(labels[2].starts_with("javac/seed42/scale1@1c"));
        assert!(labels[3].starts_with("javac/seed42/scale1@4c"));
    }

    #[test]
    fn dedupe_drops_repeats_and_keeps_first_occurrence() {
        let base = GcConfig::default();
        let job = SimJob {
            spec: WorkloadSpec::new(Preset::Jlisp, 42),
            cfg: base,
        };
        let set = JobSet::from_jobs([job, job, job]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.duplicates(), 2);
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let a = SimJob {
            spec: WorkloadSpec::new(Preset::Compress, 42),
            cfg: GcConfig::with_cores(1),
        };
        let b = SimJob {
            spec: WorkloadSpec::new(Preset::Compress, 42),
            cfg: GcConfig::with_cores(4),
        };
        let fwd = JobSet::from_jobs([a, b]);
        let rev = JobSet::from_jobs([b, a]);
        assert_eq!(fwd.digest(), rev.digest());
        assert_ne!(fwd.digest(), JobSet::from_jobs([a]).digest());
    }

    #[test]
    fn backend_axis_carries_per_backend_extras() {
        let set = ConfigMatrix::new(GcConfig::default())
            .presets([Preset::Compress])
            .backends([
                (MemBackendKind::Fixed, vec![0, 20]),
                (MemBackendKind::Dram(DramConfig::default()), vec![0]),
            ])
            .lower();
        assert_eq!(set.len(), 3);
        assert_eq!(set.jobs()[1].cfg.mem.extra_latency, 20);
        assert!(matches!(
            set.jobs()[2].cfg.mem.backend,
            MemBackendKind::Dram(_)
        ));
    }

    #[test]
    fn filters_prune_before_dedupe() {
        let set = ConfigMatrix::new(GcConfig::default())
            .presets([Preset::Compress, Preset::Javac])
            .cores([1, 4, 16])
            .filter(|j| j.cfg.n_cores < 16)
            .lower();
        assert_eq!(set.len(), 4);
        assert!(set.jobs().iter().all(|j| j.cfg.n_cores < 16));
    }
}
