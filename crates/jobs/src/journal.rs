//! The sweep resumption journal (`hwgc-sweep-journal-v1`): one JSONL
//! file per sweep recording, append-only, which jobs of a [`JobSet`]
//! have completed.
//!
//! Resumption is **journal ∪ cache**: the journal names the jobs a
//! previous (possibly killed) run finished; their *results* are
//! replayed from the content-addressed cache — which is why
//! [`crate::cache::sweep_cache_mode`] defaults sweeps to `rw`. A
//! journal therefore never carries payloads, only identities, and a
//! journaled job whose cache record has since vanished is simply
//! re-simulated (correct, just slower).
//!
//! The first line is a `plan` record carrying [`JobSet::digest`] — the
//! order-insensitive content hash of the whole set. A journal whose
//! plan digest disagrees with the sweep being resumed is a hard error:
//! replaying completion marks across *different* job sets would skip
//! jobs that never ran.

use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use hwgc_obs::json::Json;
use hwgc_obs::JobOutcome;

use crate::job::{workload_key, SimJob};
use crate::matrix::JobSet;

/// Schema tag of every journal line.
pub const JOURNAL_SCHEMA: &str = "hwgc-sweep-journal-v1";

/// A journal failure. I/O and digest mismatches are both hard errors —
/// a sweep must not resume over a journal it cannot trust.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    /// The journal's plan line names a different job set.
    PlanMismatch {
        recorded: u64,
        expected: u64,
    },
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::PlanMismatch { recorded, expected } => write!(
                f,
                "journal belongs to job set {recorded:016x}, this sweep is {expected:016x} — \
                 delete the journal or point HWGC_JOURNAL elsewhere"
            ),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

struct JournalInner {
    file: fs::File,
    done: HashSet<u64>,
}

/// An open, append-mode resumption journal. Thread-safe: coordinator
/// feeder threads record completions concurrently.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<JournalInner>,
    resumed: usize,
}

impl Journal {
    /// Open (or create) the journal at `path` for `set`. An existing
    /// journal is validated against the set's digest and its completed
    /// hashes are loaded; a fresh one gets its plan line written.
    pub fn open(path: &Path, sweep: &str, set: &JobSet) -> Result<Journal, JournalError> {
        let expected = set.digest();
        let mut done = HashSet::new();
        let mut has_plan = false;
        if path.exists() {
            for (lineno, line) in fs::read_to_string(path)?.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let j = Json::parse(line).map_err(|e| {
                    JournalError::Corrupt(format!("{}:{}: {e}", path.display(), lineno + 1))
                })?;
                match j.get("kind").and_then(Json::as_str) {
                    Some("plan") => {
                        let recorded = j
                            .get("jobset")
                            .and_then(Json::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| {
                                JournalError::Corrupt("plan line lacks a jobset digest".into())
                            })?;
                        if recorded != expected {
                            return Err(JournalError::PlanMismatch { recorded, expected });
                        }
                        has_plan = true;
                    }
                    Some("done") => {
                        let hash = j
                            .get("config_hash")
                            .and_then(Json::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| {
                                JournalError::Corrupt("done line lacks a config_hash".into())
                            })?;
                        done.insert(hash);
                    }
                    // A truncated last line never parses (handled above);
                    // an unknown kind is a forward-compat skip.
                    _ => {}
                }
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if !has_plan {
            let plan = Json::Obj(vec![
                ("schema".to_string(), Json::Str(JOURNAL_SCHEMA.into())),
                ("kind".to_string(), Json::Str("plan".into())),
                ("sweep".to_string(), Json::Str(sweep.to_string())),
                ("total".to_string(), Json::Int(set.len() as i128)),
                ("jobset".to_string(), Json::Str(format!("{expected:016x}"))),
            ]);
            writeln!(file, "{}", plan.to_string_compact())?;
        }
        let resumed = done.len();
        Ok(Journal {
            path: path.to_path_buf(),
            inner: Mutex::new(JournalInner { file, done }),
            resumed,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completions loaded from a previous run at open time.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Was this job already journaled as complete (by a previous run or
    /// earlier in this one)?
    pub fn completed(&self, config_hash: u64) -> bool {
        self.inner.lock().unwrap().done.contains(&config_hash)
    }

    /// Completions recorded so far (previous runs included).
    pub fn done_count(&self) -> usize {
        self.inner.lock().unwrap().done.len()
    }

    /// Record one completion. Idempotent per config hash — a resumed
    /// run's cache hits don't duplicate lines.
    pub fn record_done(
        &self,
        index: usize,
        job: &SimJob,
        how: JobOutcome,
        worker: usize,
    ) -> Result<(), JournalError> {
        let hash = job.config_hash();
        let mut inner = self.inner.lock().unwrap();
        if !inner.done.insert(hash) {
            return Ok(());
        }
        let line = Json::Obj(vec![
            ("schema".to_string(), Json::Str(JOURNAL_SCHEMA.into())),
            ("kind".to_string(), Json::Str("done".into())),
            ("index".to_string(), Json::Int(index as i128)),
            ("config_hash".to_string(), Json::Str(format!("{hash:016x}"))),
            ("workload".to_string(), Json::Str(workload_key(&job.spec))),
            ("outcome".to_string(), Json::Str(how.label().to_string())),
            ("worker".to_string(), Json::Int(worker as i128)),
        ]);
        writeln!(inner.file, "{}", line.to_string_compact())?;
        inner.file.flush()?;
        Ok(())
    }
}

/// The journal path requested via `HWGC_JOURNAL`, if any.
pub fn journal_path_from_env() -> Option<PathBuf> {
    std::env::var("HWGC_JOURNAL")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_core::GcConfig;
    use hwgc_workloads::{Preset, WorkloadSpec};

    fn tiny_set(cores: &[usize]) -> JobSet {
        JobSet::from_jobs(cores.iter().map(|&n| SimJob {
            spec: WorkloadSpec::new(Preset::Jlisp, 42),
            cfg: GcConfig::with_cores(n),
        }))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hwgc-journal-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn journal_records_and_reloads_completions() {
        let set = tiny_set(&[1, 2, 4]);
        let path = tmp("basic.jsonl");
        {
            let j = Journal::open(&path, "t", &set).unwrap();
            assert_eq!(j.resumed(), 0);
            j.record_done(0, &set.jobs()[0], JobOutcome::Miss, 0)
                .unwrap();
            j.record_done(2, &set.jobs()[2], JobOutcome::Miss, 1)
                .unwrap();
        }
        let j = Journal::open(&path, "t", &set).unwrap();
        assert_eq!(j.resumed(), 2);
        assert!(j.completed(set.hashes()[0]));
        assert!(!j.completed(set.hashes()[1]));
        assert!(j.completed(set.hashes()[2]));
    }

    #[test]
    fn journal_rejects_a_different_job_set() {
        let path = tmp("mismatch.jsonl");
        Journal::open(&path, "t", &tiny_set(&[1, 2])).unwrap();
        match Journal::open(&path, "t", &tiny_set(&[1, 2, 4])) {
            Err(err) => {
                assert!(matches!(err, JournalError::PlanMismatch { .. }), "{err}")
            }
            Ok(_) => panic!("journal accepted a different job set"),
        }
    }

    #[test]
    fn record_done_is_idempotent_per_hash() {
        let set = tiny_set(&[1]);
        let path = tmp("idempotent.jsonl");
        let j = Journal::open(&path, "t", &set).unwrap();
        j.record_done(0, &set.jobs()[0], JobOutcome::Miss, 0)
            .unwrap();
        j.record_done(0, &set.jobs()[0], JobOutcome::Hit, 0)
            .unwrap();
        drop(j);
        let lines = fs::read_to_string(&path).unwrap();
        assert_eq!(lines.lines().filter(|l| l.contains("\"done\"")).count(), 1);
    }
}
