//! The unit of sweep work: one verified collection of a preset workload
//! under one [`GcConfig`], plus everything needed to name it (the ledger
//! identity whose `config_hash` keys the result cache) and to ship it to
//! a worker process (an exact two-way JSON codec).
//!
//! The key builders ([`workload_key`], [`engine_label`],
//! [`backend_label`], [`ledger_config_pairs`], [`ledger_env_pairs`])
//! moved here from `hwgc-bench` so the job layer and the harness derive
//! byte-identical ledger records; `hwgc-bench` re-exports them.

use hwgc_core::{EngineKind, GcConfig, GcOutcome, SimCollector};
use hwgc_heap::{verify_collection, Snapshot};
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_obs::json::Json;
use hwgc_obs::LedgerRecord;
use hwgc_workloads::{Preset, WorkloadSpec};

/// One sweep job: a workload to build and a config to collect it under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJob {
    pub spec: WorkloadSpec,
    pub cfg: GcConfig,
}

impl SimJob {
    /// The job's ledger identity under the given binary name (outputs
    /// empty — the cache layer fills them on a miss). `binary` is
    /// deliberately *excluded* from [`LedgerRecord::config_hash`], so
    /// identical jobs dedupe across binaries.
    pub fn cache_key(&self, binary: &str) -> LedgerRecord {
        LedgerRecord {
            binary: binary.to_string(),
            workload: workload_key(&self.spec),
            engine: engine_label(&self.cfg).to_string(),
            backend: backend_label(&self.cfg).to_string(),
            config: ledger_config_pairs(&self.cfg),
            env: ledger_env_pairs(),
            ..LedgerRecord::default()
        }
    }

    /// The content hash that names this job everywhere: in the
    /// [`crate::JobSet`] dedupe, the resumption journal and the result
    /// cache. Binary-independent by construction.
    pub fn config_hash(&self) -> u64 {
        self.cache_key("").config_hash()
    }

    /// The telemetry label the harness has always used for sweep jobs.
    pub fn label(&self) -> String {
        format!(
            "{}@{}c/{}",
            workload_key(&self.spec),
            self.cfg.n_cores,
            engine_label(&self.cfg)
        )
    }
}

/// Run one job: build the heap, collect, verify. This is the only
/// simulation entry the executor and the `sweep_worker` binary use, so
/// in-process and multi-process runs are the same code path.
///
/// # Panics
/// Panics if the collected heap fails verification — sweep numbers from
/// an incorrect collection would be meaningless.
pub fn simulate(job: &SimJob) -> GcOutcome {
    let mut heap = job.spec.build();
    let snap = Snapshot::capture(&heap);
    let out = SimCollector::new(job.cfg).collect(&mut heap);
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", job.spec.preset));
    out
}

/// The cache identity of a spec-built workload: every field of
/// [`WorkloadSpec`] that shapes the heap. (`scale` is a multiplier with
/// an exact decimal rendering for the values the harness uses.)
pub fn workload_key(spec: &WorkloadSpec) -> String {
    format!("{}/seed{}/scale{}", spec.preset, spec.seed, spec.scale)
}

/// Ledger label for the engine a config resolves to.
pub fn engine_label(cfg: &GcConfig) -> &'static str {
    match cfg.effective_engine() {
        EngineKind::Naive => "naive",
        EngineKind::Sparse => "sparse",
        EngineKind::Par => "par",
    }
}

/// Ledger label for the memory-timing backend.
pub fn backend_label(cfg: &GcConfig) -> &'static str {
    match cfg.mem.backend {
        MemBackendKind::Fixed => "fixed",
        MemBackendKind::Dram(_) => "dram",
    }
}

/// The simulation-relevant config of a run as sorted key/value pairs —
/// the input to [`LedgerRecord::config_hash`]. Every field of
/// [`GcConfig`] that can change a simulation outcome appears here; output
/// paths and profiling toggles deliberately do not, so two records of the
/// same simulation hash identically whether or not they were profiled.
///
/// DRAM backends additionally carry their full timing/policy parameter
/// set under the `dram` key: the bare `backend` label collapses every
/// DRAM variant to `"dram"`, and without the parameters an open-page
/// record could satisfy a closed-page lookup. Fixed-backend hashes are
/// unchanged by this (the key is absent), so committed ledgers stay
/// valid.
pub fn ledger_config_pairs(cfg: &GcConfig) -> Vec<(String, String)> {
    let kv = |k: &str, v: String| (k.to_string(), v);
    let mut pairs = if let MemBackendKind::Dram(d) = cfg.mem.backend {
        vec![kv("dram", format!("{d:?}"))]
    } else {
        Vec::new()
    };
    pairs.extend([
        kv("backend", backend_label(cfg).to_string()),
        kv("bandwidth", cfg.mem.bandwidth.to_string()),
        kv("engine", engine_label(cfg).to_string()),
        kv("extra_latency", cfg.mem.extra_latency.to_string()),
        kv("fast_forward", cfg.fast_forward.to_string()),
        kv(
            "header_cache_entries",
            cfg.mem.header_cache_entries.to_string(),
        ),
        kv(
            "header_fifo_capacity",
            cfg.mem.header_fifo_capacity.to_string(),
        ),
        kv("host_threads", cfg.host_threads.to_string()),
        kv("latency", cfg.mem.latency.to_string()),
        kv("line_split", format!("{:?}", cfg.line_split)),
        kv("max_cycles", cfg.max_cycles.to_string()),
        kv("multiport_sb", cfg.multiport_sb.to_string()),
        kv("n_cores", cfg.n_cores.to_string()),
        kv("par_copy_threshold", cfg.par_copy_threshold.to_string()),
        kv(
            "service_reorder_seed",
            format!("{:?}", cfg.mem.service_reorder_seed),
        ),
        kv("sparse", cfg.sparse.to_string()),
        kv("test_before_lock", cfg.test_before_lock.to_string()),
        kv(
            "tick_permutation_seed",
            format!("{:?}", cfg.tick_permutation_seed),
        ),
    ]);
    pairs
}

/// `HWGC_*` environment knobs that shape simulation behaviour, captured
/// for the ledger's provenance field. Output-only knobs (`HWGC_LEDGER`,
/// `HWGC_HOSTPROF`, `HWGC_UPDATE_GOLDENS`), harness parallelism
/// (`HWGC_JOBS`, `HWGC_WORKERS`, `HWGC_WORKER_BIN`,
/// `HWGC_WORKER_ABORT_AFTER`) and the observatory's own knobs
/// (`HWGC_CACHE*`, `HWGC_TELEMETRY`, `HWGC_JOURNAL`, `HWGC_ARTIFACTS`)
/// are excluded — they cannot change a simulation result, and a cache
/// knob that perturbed the config hash would invalidate the very cache
/// it configures.
pub fn ledger_env_pairs() -> Vec<(String, String)> {
    const EXCLUDE: [&str; 14] = [
        "HWGC_LEDGER",
        "HWGC_HOSTPROF",
        "HWGC_UPDATE_GOLDENS",
        "HWGC_JOBS",
        "HWGC_CACHE",
        "HWGC_CACHE_PATH",
        "HWGC_CACHE_VERIFY_PCT",
        "HWGC_CACHE_LEDGER",
        "HWGC_TELEMETRY",
        "HWGC_WORKERS",
        "HWGC_WORKER_BIN",
        "HWGC_WORKER_ABORT_AFTER",
        "HWGC_JOURNAL",
        "HWGC_ARTIFACTS",
    ];
    let mut pairs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("HWGC_") && !EXCLUDE.contains(&k.as_str()))
        .collect();
    pairs.sort();
    pairs
}

// ---------------------------------------------------------------------
// SimJob <-> Json: the worker wire codec. Exact two-way round-trip for
// every config the matrix layer can produce (proptested in
// tests/jobset.rs) — a job that decoded differently would silently
// simulate the wrong point of the design space.
// ---------------------------------------------------------------------

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, |n| Json::Int(i128::from(n)))
}

fn opt_u64_back(j: Option<&Json>, what: &str) -> Result<Option<u64>, String> {
    match j {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .map(Some)
            .ok_or_else(|| format!("`{what}` is not a u64")),
    }
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_int)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| format!("missing u64 field `{key}`"))
}

fn req_u32(j: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(req_u64(j, key)?).map_err(|_| format!("`{key}` overflows u32"))
}

fn req_usize(j: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(req_u64(j, key)?).map_err(|_| format!("`{key}` overflows usize"))
}

fn req_bool(j: &Json, key: &str) -> Result<bool, String> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool field `{key}`")),
    }
}

fn backend_to_json(b: &MemBackendKind) -> Json {
    match b {
        MemBackendKind::Fixed => Json::Obj(vec![("kind".to_string(), Json::Str("fixed".into()))]),
        MemBackendKind::Dram(d) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("dram".into())),
            ("t_rcd".to_string(), Json::Int(i128::from(d.t_rcd))),
            ("t_cas".to_string(), Json::Int(i128::from(d.t_cas))),
            ("t_rp".to_string(), Json::Int(i128::from(d.t_rp))),
            ("t_ras".to_string(), Json::Int(i128::from(d.t_ras))),
            ("n_banks".to_string(), Json::Int(i128::from(d.n_banks))),
            ("row_words".to_string(), Json::Int(i128::from(d.row_words))),
            (
                "page_policy".to_string(),
                Json::Str(
                    match d.page_policy {
                        PagePolicy::Open => "open",
                        PagePolicy::Closed => "closed",
                    }
                    .into(),
                ),
            ),
        ]),
    }
}

fn backend_from_json(j: &Json) -> Result<MemBackendKind, String> {
    match j.get("kind").and_then(Json::as_str) {
        Some("fixed") => Ok(MemBackendKind::Fixed),
        Some("dram") => Ok(MemBackendKind::Dram(DramConfig {
            t_rcd: req_u32(j, "t_rcd")?,
            t_cas: req_u32(j, "t_cas")?,
            t_rp: req_u32(j, "t_rp")?,
            t_ras: req_u32(j, "t_ras")?,
            n_banks: req_u32(j, "n_banks")?,
            row_words: req_u32(j, "row_words")?,
            page_policy: match j.get("page_policy").and_then(Json::as_str) {
                Some("open") => PagePolicy::Open,
                Some("closed") => PagePolicy::Closed,
                other => return Err(format!("bad `page_policy` {other:?}")),
            },
        })),
        other => Err(format!("bad backend `kind` {other:?}")),
    }
}

fn mem_to_json(m: &MemConfig) -> Json {
    Json::Obj(vec![
        ("latency".to_string(), Json::Int(i128::from(m.latency))),
        ("bandwidth".to_string(), Json::Int(i128::from(m.bandwidth))),
        (
            "header_fifo_capacity".to_string(),
            Json::Int(m.header_fifo_capacity as i128),
        ),
        (
            "extra_latency".to_string(),
            Json::Int(i128::from(m.extra_latency)),
        ),
        (
            "header_cache_entries".to_string(),
            Json::Int(m.header_cache_entries as i128),
        ),
        (
            "service_reorder_seed".to_string(),
            opt_u64(m.service_reorder_seed),
        ),
        ("backend".to_string(), backend_to_json(&m.backend)),
    ])
}

fn mem_from_json(j: &Json) -> Result<MemConfig, String> {
    Ok(MemConfig {
        latency: req_u32(j, "latency")?,
        bandwidth: req_u32(j, "bandwidth")?,
        header_fifo_capacity: req_usize(j, "header_fifo_capacity")?,
        extra_latency: req_u32(j, "extra_latency")?,
        header_cache_entries: req_usize(j, "header_cache_entries")?,
        service_reorder_seed: opt_u64_back(j.get("service_reorder_seed"), "service_reorder_seed")?,
        backend: backend_from_json(j.get("backend").ok_or("missing `backend`")?)?,
    })
}

fn engine_to_json(e: Option<EngineKind>) -> Json {
    match e {
        None => Json::Null,
        Some(EngineKind::Naive) => Json::Str("naive".into()),
        Some(EngineKind::Sparse) => Json::Str("sparse".into()),
        Some(EngineKind::Par) => Json::Str("par".into()),
    }
}

fn engine_from_json(j: Option<&Json>) -> Result<Option<EngineKind>, String> {
    match j {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => match s.as_str() {
            "naive" => Ok(Some(EngineKind::Naive)),
            "sparse" => Ok(Some(EngineKind::Sparse)),
            "par" => Ok(Some(EngineKind::Par)),
            other => Err(format!("bad `engine` {other:?}")),
        },
        Some(_) => Err("`engine` is neither null nor a string".to_string()),
    }
}

/// Serialize a [`GcConfig`] for the worker wire. Exhaustive: a new
/// `GcConfig` field must be added here or the compiler complains in
/// [`config_from_json`]'s struct literal.
pub fn config_to_json(cfg: &GcConfig) -> Json {
    Json::Obj(vec![
        ("n_cores".to_string(), Json::Int(cfg.n_cores as i128)),
        ("mem".to_string(), mem_to_json(&cfg.mem)),
        (
            "test_before_lock".to_string(),
            Json::Bool(cfg.test_before_lock),
        ),
        (
            "line_split".to_string(),
            cfg.line_split
                .map_or(Json::Null, |n| Json::Int(i128::from(n))),
        ),
        (
            "tick_permutation_seed".to_string(),
            opt_u64(cfg.tick_permutation_seed),
        ),
        (
            "max_cycles".to_string(),
            Json::Int(i128::from(cfg.max_cycles)),
        ),
        ("multiport_sb".to_string(), Json::Bool(cfg.multiport_sb)),
        ("fast_forward".to_string(), Json::Bool(cfg.fast_forward)),
        ("sparse".to_string(), Json::Bool(cfg.sparse)),
        ("engine".to_string(), engine_to_json(cfg.engine)),
        (
            "host_threads".to_string(),
            Json::Int(cfg.host_threads as i128),
        ),
        (
            "par_copy_threshold".to_string(),
            Json::Int(cfg.par_copy_threshold as i128),
        ),
    ])
}

/// Decode [`config_to_json`] output. Exact inverse.
pub fn config_from_json(j: &Json) -> Result<GcConfig, String> {
    Ok(GcConfig {
        n_cores: req_usize(j, "n_cores")?,
        mem: mem_from_json(j.get("mem").ok_or("missing `mem`")?)?,
        test_before_lock: req_bool(j, "test_before_lock")?,
        line_split: opt_u64_back(j.get("line_split"), "line_split")?
            .map(|n| u32::try_from(n).map_err(|_| "`line_split` overflows u32"))
            .transpose()?,
        tick_permutation_seed: opt_u64_back(
            j.get("tick_permutation_seed"),
            "tick_permutation_seed",
        )?,
        max_cycles: req_u64(j, "max_cycles")?,
        multiport_sb: req_bool(j, "multiport_sb")?,
        fast_forward: req_bool(j, "fast_forward")?,
        sparse: req_bool(j, "sparse")?,
        engine: engine_from_json(j.get("engine"))?,
        host_threads: req_usize(j, "host_threads")?,
        par_copy_threshold: req_usize(j, "par_copy_threshold")?,
    })
}

/// Serialize a whole [`SimJob`].
pub fn job_to_json(job: &SimJob) -> Json {
    Json::Obj(vec![
        (
            "preset".to_string(),
            Json::Str(job.spec.preset.name().to_string()),
        ),
        ("seed".to_string(), Json::Int(i128::from(job.spec.seed))),
        // `Json::Float` renders via `{:?}` and parses back exactly, so
        // the scale multiplier survives the wire bit-for-bit.
        ("scale".to_string(), Json::Float(job.spec.scale)),
        ("cfg".to_string(), config_to_json(&job.cfg)),
    ])
}

/// Decode [`job_to_json`] output. Exact inverse.
pub fn job_from_json(j: &Json) -> Result<SimJob, String> {
    let preset_name = j
        .get("preset")
        .and_then(Json::as_str)
        .ok_or("missing `preset`")?;
    let preset =
        Preset::by_name(preset_name).ok_or_else(|| format!("unknown preset `{preset_name}`"))?;
    let scale = j
        .get("scale")
        .and_then(Json::as_f64)
        .ok_or("missing `scale`")?;
    Ok(SimJob {
        spec: WorkloadSpec {
            preset,
            seed: req_u64(j, "seed")?,
            scale,
        },
        cfg: config_from_json(j.get("cfg").ok_or("missing `cfg`")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_codec_round_trips_a_nontrivial_config() {
        let job = SimJob {
            spec: WorkloadSpec {
                preset: Preset::Javac,
                seed: 42,
                scale: 1.5,
            },
            cfg: GcConfig {
                n_cores: 4,
                mem: MemConfig {
                    extra_latency: 20,
                    service_reorder_seed: Some(7),
                    backend: MemBackendKind::Dram(DramConfig {
                        page_policy: PagePolicy::Closed,
                        ..DramConfig::default()
                    }),
                    ..MemConfig::default()
                },
                line_split: Some(8),
                tick_permutation_seed: Some(3),
                engine: Some(EngineKind::Par),
                host_threads: 2,
                ..GcConfig::with_cores(4)
            },
        };
        let wire = job_to_json(&job).to_string_compact();
        let back = job_from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, job);
        assert_eq!(back.config_hash(), job.config_hash());
    }

    #[test]
    fn dram_variants_hash_distinctly() {
        let with_backend = |backend| SimJob {
            spec: WorkloadSpec::new(Preset::Compress, 42),
            cfg: GcConfig {
                mem: MemConfig::default().with_backend(backend),
                ..GcConfig::default()
            },
        };
        let open = with_backend(MemBackendKind::Dram(DramConfig::default()));
        let closed = with_backend(MemBackendKind::Dram(DramConfig {
            page_policy: PagePolicy::Closed,
            ..DramConfig::default()
        }));
        // Both are labelled plain "dram"; the `dram` config pair is what
        // keeps an open-page record from satisfying a closed-page lookup.
        assert_eq!(backend_label(&open.cfg), backend_label(&closed.cfg));
        assert_ne!(open.config_hash(), closed.config_hash());
        // The fixed backend carries no `dram` pair at all.
        assert!(ledger_config_pairs(&GcConfig::default())
            .iter()
            .all(|(k, _)| k != "dram"));
    }

    #[test]
    fn config_hash_is_binary_independent() {
        let job = SimJob {
            spec: WorkloadSpec::new(Preset::Compress, 42),
            cfg: GcConfig::with_cores(2),
        };
        assert_eq!(
            job.cache_key("fig5_scaling").config_hash(),
            job.cache_key("bench_baseline").config_hash(),
            "cross-binary dedupe rests on the binary field staying out of the hash"
        );
    }
}
