//! The sweep job layer: every experiment sweep in the workspace runs
//! through this crate.
//!
//! A sweep is declared as a [`ConfigMatrix`] (axis product + pins +
//! filters), lowered to a canonical [`JobSet`] — order-stable,
//! deduplicated by the ledger `config_hash`, content-named by
//! [`JobSet::digest`] — and executed by [`run_jobset`] either in-process
//! on the [`par_map`] pool or across persistent `sweep_worker` processes
//! with work stealing (`HWGC_WORKERS`). Execution rides the
//! content-addressed [`ResultCache`] (sweeps default to `rw`, see
//! [`sweep_cache_mode`]), journals every completion for resumption
//! ([`Journal`]), reports to fleet-aware telemetry
//! ([`hwgc_obs::SweepProgress`]) and lands exports in a typed
//! [`ArtifactStore`].
//!
//! Module map:
//! * [`matrix`] — `ConfigMatrix` → `JobSet` lowering and canonical form
//! * [`job`] — `SimJob`, the simulate entry point, ledger key builders,
//!   and the job/config JSON codec
//! * [`exec`] — the in-process and multi-process execution engines
//! * [`protocol`] — the coordinator ↔ `sweep_worker` wire format
//! * [`journal`] — the append-only resumption journal (journal ∪ cache)
//! * [`cache`] — the content-addressed result cache (moved here from
//!   `hwgc-check`, which re-exports it)
//! * [`par`] — the scoped-thread in-process pool (`HWGC_JOBS`) and the
//!   worker-fleet sizing knob (`HWGC_WORKERS`)
//! * [`artifacts`] — the typed artifact store (`HWGC_ARTIFACTS`)

pub mod artifacts;
pub mod cache;
pub mod exec;
pub mod job;
pub mod journal;
pub mod matrix;
pub mod par;
pub mod protocol;

pub use artifacts::ArtifactStore;
pub use cache::{
    cache_path_from_env, outcome_from_json, outcome_to_json, stats_from_json, stats_to_json,
    sweep_cache_mode, CacheCounters, CacheError, CacheLookup, CacheMode, ResultCache,
};
pub use exec::{run_jobset, worker_bin_path, ExecError, ExecOptions, ExecReport};
pub use job::{
    backend_label, config_from_json, config_to_json, engine_label, job_from_json, job_to_json,
    ledger_config_pairs, ledger_env_pairs, simulate, workload_key, SimJob,
};
pub use journal::{journal_path_from_env, Journal, JournalError, JOURNAL_SCHEMA};
pub use matrix::{ConfigMatrix, JobSet};
pub use par::{jobs, jobs_from, par_map, par_map_profiled, workers, workers_from, ParMapStats};
pub use protocol::{read_frame, write_frame, FromWorker, ToWorker};
