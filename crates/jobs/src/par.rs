//! Scoped-thread work pool for the harness: sweep combinations, oracle
//! configurations and experiment rows are independent simulations (each
//! owns its heap and engine), so they fan out across `std::thread::scope`
//! workers — no external dependency, no unsafe.
//!
//! Parallelism is controlled by the `HWGC_JOBS` environment variable:
//!
//! * unset, `0`, or unparseable → the machine's available parallelism,
//! * `1` → serial execution on the calling thread (deterministic
//!   debugging order),
//! * `N ≥ 2` → that many workers.
//!
//! Results are always collected in input order, regardless of completion
//! order, so every caller is deterministic modulo wall-clock.
//!
//! The sibling knob `HWGC_WORKERS` ([`workers`]) sizes the *process*
//! fleet of the multi-process sweep executor (`crate::exec`); its
//! default is 0 — no fleet, run in-process on this pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The worker count requested by `HWGC_JOBS` (see the module docs for the
/// exact unset/zero/garbage semantics).
pub fn jobs() -> usize {
    jobs_from(std::env::var("HWGC_JOBS").ok().as_deref())
}

/// [`jobs`] on an explicit value — separable for tests, since the process
/// environment is shared mutable state.
pub fn jobs_from(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        // 0 or garbage falls through to the default, like unset.
        _ => default_parallelism(),
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker-*process* count requested by `HWGC_WORKERS` for the
/// multi-process sweep executor. Unlike [`jobs`] there is no machine
/// default: `0` (and unset, and garbage) means "no worker fleet" — the
/// executor runs in-process on the [`par_map`] pool. `N ≥ 1` spawns
/// that many persistent `sweep_worker` children.
pub fn workers() -> usize {
    workers_from(std::env::var("HWGC_WORKERS").ok().as_deref())
}

/// [`workers`] on an explicit value — separable for tests, since the
/// process environment is shared mutable state.
pub fn workers_from(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        // 0 or garbage falls through to "in-process", like unset.
        _ => 0,
    }
}

/// Apply `f` to every item, using up to [`jobs`] scoped worker threads,
/// and return the results in input order. `f` receives the item index and
/// the item. With one worker (or one item) everything runs inline on the
/// calling thread. A panic in any worker propagates to the caller with
/// its original payload once the scope joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Host-time telemetry of one [`par_map_profiled`] call, for the
/// harness's hostprof section. Everything here is wall-clock or
/// machine-dependent; it must never enter simulation artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParMapStats {
    /// Items processed.
    pub jobs: u64,
    /// Worker threads used (1 = inline on the caller).
    pub workers: u64,
    /// Wall time of the whole call, scatter to gather.
    pub wall_ns: u64,
    /// Sum over items of the delay between call start and the item's
    /// pickup — the queue-wait integral (high values with low
    /// `busy_ns` mean the pool is starved, not oversubscribed).
    pub queue_wait_ns_total: u64,
    /// Sum over items of their processing time (worker occupancy; with
    /// `wall_ns * workers` this gives pool utilization).
    pub busy_ns: u64,
}

/// [`par_map`] with host-time telemetry: identical results and ordering,
/// plus a [`ParMapStats`] describing queue wait and worker occupancy.
pub fn par_map_profiled<T, R, F>(items: &[T], f: F) -> (Vec<R>, ParMapStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    let start = Instant::now();
    if workers <= 1 {
        let mut busy = 0u64;
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let t0 = Instant::now();
                let r = f(i, t);
                busy += t0.elapsed().as_nanos() as u64;
                r
            })
            .collect();
        let stats = ParMapStats {
            jobs: n as u64,
            workers: 1,
            wall_ns: start.elapsed().as_nanos() as u64,
            queue_wait_ns_total: 0,
            busy_ns: busy,
        };
        return (out, stats);
    }
    let next = AtomicUsize::new(0);
    let queue_wait = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                queue_wait.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let t0 = Instant::now();
                let r = f(i, &items[i]);
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    let stats = ParMapStats {
        jobs: n as u64,
        workers: workers as u64,
        wall_ns: start.elapsed().as_nanos() as u64,
        queue_wait_ns_total: queue_wait.load(Ordering::Relaxed),
        busy_ns: busy.load(Ordering::Relaxed),
    };
    let out = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_from_documents_every_input_class() {
        let default = default_parallelism();
        assert!(default >= 1);
        // Unset → default.
        assert_eq!(jobs_from(None), default);
        // Zero → default (a zero-worker pool is meaningless).
        assert_eq!(jobs_from(Some("0")), default);
        // Garbage → default.
        assert_eq!(jobs_from(Some("lots")), default);
        assert_eq!(jobs_from(Some("")), default);
        assert_eq!(jobs_from(Some("-3")), default);
        assert_eq!(jobs_from(Some("2.5")), default);
        // Explicit counts are honored, including serial mode.
        assert_eq!(jobs_from(Some("1")), 1);
        assert_eq!(jobs_from(Some("7")), 7);
        assert_eq!(jobs_from(Some(" 4 ")), 4, "whitespace is trimmed");
    }

    #[test]
    fn workers_from_documents_every_input_class() {
        // Unset → no worker fleet (in-process execution).
        assert_eq!(workers_from(None), 0);
        // Zero → in-process, explicitly.
        assert_eq!(workers_from(Some("0")), 0);
        // Garbage → in-process (never a surprise fleet).
        assert_eq!(workers_from(Some("lots")), 0);
        assert_eq!(workers_from(Some("")), 0);
        assert_eq!(workers_from(Some("-3")), 0);
        assert_eq!(workers_from(Some("2.5")), 0);
        // Explicit counts are honored, including a single worker.
        assert_eq!(workers_from(Some("1")), 1);
        assert_eq!(workers_from(Some("4")), 4);
        assert_eq!(workers_from(Some(" 2 ")), 2, "whitespace is trimmed");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out.len(), items.len());
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let none: Vec<u32> = par_map(&[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(par_map(&[9u32], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_profiled_matches_par_map() {
        let items: Vec<u64> = (0..64).collect();
        let plain = par_map(&items, |_, &x| x * 3);
        let (profiled, stats) = par_map_profiled(&items, |_, &x| x * 3);
        assert_eq!(plain, profiled);
        assert_eq!(stats.jobs, 64);
        assert!(stats.workers >= 1);
        // Wall time covers the whole call; busy time is per-item work.
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |_, &x| {
                assert!(x != 13, "combo 13 diverged");
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
