//! The memory access scheduler and DRAM timing model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::backend::{
    backend_from, BodyPortsView, BodyWindowPatch, InflightTxnView, MemBackendKind,
};
use crate::dram::DramStats;

/// Memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Cycles from service start to completion for *random* accesses
    /// (header traffic, and the first word of a body stream). The FPGA
    /// prototype's DDR-SDRAM ran at ≥4× the 25 MHz core clock, so its
    /// latency was "a few clock cycles"; Figure 6 adds an artificial +20
    /// to every access.
    pub latency: u32,
    /// Requests that may begin service per core cycle (bandwidth). The
    /// prototype's memory clock ratio gives it several transfers per core
    /// cycle.
    pub bandwidth: u32,
    /// Capacity of the on-chip header FIFO (prototype: up to 32k entries).
    pub header_fifo_capacity: usize,
    /// Extra latency applied to *every* access on top of any burst
    /// shortcut — the Figure 6 "artificial latency" knob.
    pub extra_latency: u32,
    /// Extension 2 (paper conclusions, item 2): a shared, direct-mapped,
    /// write-through header cache at the memory interface. Header loads
    /// that hit complete in one cycle without a DRAM request. `0`
    /// disables it (the paper's baseline).
    pub header_cache_entries: usize,
    /// Schedule-exploration knob: when set, DRAM starts service for queued
    /// requests in a seeded pseudo-random order instead of FIFO arrival
    /// order. Any service order is legal — the only architectural ordering
    /// requirement (header loads after matching header stores) is enforced
    /// by the comparator array *before* a request enters the queue — so a
    /// functional difference under reordering is a collector bug. `None`
    /// (the default) keeps FIFO service. Fixed backend only; the DRAM
    /// backend's service order is its per-bank FIFO discipline.
    pub service_reorder_seed: Option<u64>,
    /// Which timing backend the engine instantiates (see
    /// [`crate::MemBackend`]). Defaults from the `HWGC_MEM_BACKEND`
    /// environment knob ([`backend_from`] documents the grammar);
    /// `MemorySystem` itself ignores this field — it *is* the
    /// [`MemBackendKind::Fixed`] implementation.
    pub backend: MemBackendKind,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        // Prototype-like regime: latency of a few core cycles and a memory
        // clock several times the core clock (Section VI-A), i.e. enough
        // bandwidth that ~a dozen active cores saturate it — which is what
        // bounds the paper's 16-core speedup at 12.1×.
        MemConfig {
            latency: 5,
            bandwidth: 10,
            header_fifo_capacity: 4096,
            extra_latency: 0,
            header_cache_entries: 0,
            service_reorder_seed: None,
            backend: backend_from(std::env::var("HWGC_MEM_BACKEND").ok().as_deref()),
        }
    }
}

impl MemConfig {
    /// The Figure 6 experiment: add cycles of artificial latency to every
    /// memory access (bursts included — the paper delays each access).
    pub fn with_extra_latency(mut self, extra: u32) -> MemConfig {
        self.extra_latency = extra;
        self
    }

    /// Serve the DRAM queue in a seeded pseudo-random order (schedule
    /// exploration; see [`MemConfig::service_reorder_seed`]).
    pub fn with_service_reorder(mut self, seed: u64) -> MemConfig {
        self.service_reorder_seed = Some(seed);
        self
    }

    /// Select the memory-timing backend (see [`MemBackendKind`]).
    pub fn with_backend(mut self, backend: MemBackendKind) -> MemConfig {
        self.backend = backend;
        self
    }
}

/// One of the four per-core buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Port {
    HeaderLoad = 0,
    HeaderStore = 1,
    BodyLoad = 2,
    BodyStore = 3,
}

/// Number of ports per core.
pub const PORT_COUNT: usize = 4;

impl Port {
    /// All ports, in index order.
    pub const ALL: [Port; PORT_COUNT] = [
        Port::HeaderLoad,
        Port::HeaderStore,
        Port::BodyLoad,
        Port::BodyStore,
    ];

    /// Is this a load port?
    pub fn is_load(self) -> bool {
        matches!(self, Port::HeaderLoad | Port::BodyLoad)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnState {
    /// Header load waiting for a matching header store (comparator array).
    Blocked,
    /// Waiting for DRAM service.
    Queued,
    /// In DRAM; completes at the stored cycle.
    InService { done_at: u64 },
    /// Load data sitting in the buffer, not yet consumed by the core.
    Complete,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Txn {
    pub(crate) addr: u32,
    pub(crate) state: TxnState,
    pub(crate) issued_at: u64,
}

/// One memory-system transition, as recorded by the opt-in event log (see
/// [`MemorySystem::enable_event_log`]). Every variant is a *transition* —
/// something changed — so fast-forward windows (which are transition-free
/// by construction: empty queue, nothing retiring, no core issuing or
/// consuming) never need to replicate events, and the log stays bit-exact
/// under event-horizon skipping without pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A request entered the `(core, port)` buffer.
    Issue { core: u32, port: Port, addr: u32 },
    /// The comparator array held a header load behind a pending header
    /// store to the same address (at issue time).
    CompBlocked { core: u32, addr: u32 },
    /// The matching store retired; the held load joined the DRAM queue.
    CompUnblocked { core: u32, addr: u32 },
    /// A header load hit the shared header cache and completed on-chip.
    CacheHit { core: u32, addr: u32 },
    /// DRAM began serving the request; it completes `latency` cycles
    /// later (`0` = burst continuation, complete within this cycle).
    ServiceStart { core: u32, port: Port, latency: u32 },
    /// The transaction left DRAM: load data ready / store committed.
    Retire { core: u32, port: Port },
    /// The owning core consumed waiting load data, freeing the buffer.
    Consume { core: u32, port: Port },
    /// DRAM backend only: a service start resolved against the row
    /// buffer of `bank` with the given `outcome`; `bank_queue` requests
    /// were still waiting in that bank's queue afterwards. Emitted
    /// immediately before the matching [`MemEvent::ServiceStart`], and
    /// *never* by the fixed backend — existing event streams and golden
    /// files are byte-identical through the trait refactor.
    DramAccess {
        core: u32,
        port: Port,
        bank: u32,
        outcome: RowOutcome,
        bank_queue: u32,
    },
}

/// How a DRAM access resolved against its bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row was already open: column access only (`tCAS`).
    Hit,
    /// The bank was precharged (no open row): activate + column access
    /// (`tRCD + tCAS`). Every closed-page access resolves here.
    Empty,
    /// Another row was open: precharge (after `tRAS` expires) +
    /// activate + column access.
    Conflict,
}

impl RowOutcome {
    /// Display name (metric key segment).
    pub fn name(self) -> &'static str {
        match self {
            RowOutcome::Hit => "hit",
            RowOutcome::Empty => "empty",
            RowOutcome::Conflict => "conflict",
        }
    }
}

/// A [`MemEvent`] stamped with the memory-system cycle it occurred in
/// (kept equal to the engine's cycle numbering via
/// [`MemorySystem::set_cycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEventRecord {
    pub cycle: u64,
    pub event: MemEvent,
}

/// Aggregate statistics of the memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Transactions issued per port kind (indexed by `Port as usize`).
    pub issued: [u64; PORT_COUNT],
    /// Cycles a header load spent blocked behind a matching store.
    pub comparator_blocked_cycles: u64,
    /// Header-cache hits (loads served on-chip).
    pub header_cache_hits: u64,
    /// Header-cache misses (loads that went to DRAM while the cache was
    /// enabled).
    pub header_cache_misses: u64,
    /// Cumulative DRAM queue occupancy (for mean queue depth).
    pub queue_occupancy_sum: u64,
    /// Cycles with at least one request waiting for DRAM service.
    pub queue_busy_cycles: u64,
    /// Total cycles observed.
    pub cycles: u64,
    /// Bank/row counters — `Some` only when the DRAM backend produced
    /// these stats, so fixed-backend `GcStats` comparisons (and every
    /// committed golden) are untouched by the backend boundary.
    pub dram: Option<DramStats>,
}

impl MemStats {
    /// Mean number of requests waiting for DRAM service per cycle.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.queue_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Total transactions issued.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }
}

/// The split-transaction memory system: per-core single-entry buffers in
/// front of a bandwidth/latency DRAM model, with the comparator array that
/// orders header loads after matching header stores.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    cycle: u64,
    /// `ports[core][port]`.
    ports: Vec<[Option<Txn>; PORT_COUNT]>,
    /// Service queue: `(core, port)` in arrival order.
    queue: VecDeque<(usize, Port)>,
    /// Pending header-store addresses (comparator array). Tiny: at most one
    /// entry per core.
    pending_header_stores: Vec<u32>,
    /// Last body-access address per core and port parity (load/store),
    /// for the sequential-burst fast path: bodies are streamed, so an
    /// access to `prev + 1` hits the open DRAM row / continues the burst.
    last_body_addr: Vec<[Option<u32>; 2]>,
    /// Shared direct-mapped header cache: tag (header address) per set.
    /// Timing-only — data always comes from the functional heap; the
    /// cache is write-through and therefore coherent by construction.
    header_cache: Vec<Option<u32>>,
    /// xorshift state for out-of-order queue service (`None` = FIFO).
    reorder_state: Option<u64>,
    stats: MemStats,
    // Derived occupancy counters so the per-cycle tick touches no port
    // buffer unless something can actually change. Invariants:
    // `occupied` = number of `Some` port entries, `in_service` / `blocked`
    // / `complete` = entries in the corresponding `TxnState`, and
    // `next_retire` = earliest `done_at` among in-service transactions
    // (`u64::MAX` when none).
    occupied: usize,
    in_service: usize,
    blocked: usize,
    complete: usize,
    next_retire: u64,
    /// Retirement calendar: one `(done_at, core, port)` entry per
    /// in-service transaction, min-ordered. A retire cycle pops exactly
    /// the transactions that are due instead of scanning every port
    /// buffer and then rescanning to recompute `next_retire` — the scans
    /// were O(cores × ports) on nearly every cycle at 16 cores, and
    /// dominated the whole simulator (see DESIGN.md "profiling the
    /// simulator"). In-service transactions never cancel, so the calendar
    /// holds no stale entries, and within a cycle the `(core, port)` tie
    /// break reproduces the old scan's retire order exactly (ports are
    /// declared in index order). Bounded by the port-buffer count, so the
    /// preallocated heap never grows.
    retire_cal: BinaryHeap<Reverse<(u64, u32, u8)>>,
    /// Set when a pending header store retired; the comparator re-check
    /// can only unblock a load on such a cycle.
    pending_stores_dirty: bool,
    /// Sparse-engine wake feed (`None` = off): core ids whose transactions
    /// retired since the engine last drained. A core parked on a memory
    /// stall re-ticks when its id appears here — retirement is the only
    /// event that can make its retry succeed.
    wake_feed: Option<Vec<usize>>,
    /// Cycle-stamped transition log; `None` (the default) records nothing
    /// and costs nothing.
    events: Option<Vec<MemEventRecord>>,
}

impl MemorySystem {
    /// Memory system serving `n_cores` cores.
    pub fn new(n_cores: usize, cfg: MemConfig) -> MemorySystem {
        assert!(cfg.bandwidth > 0, "bandwidth must be positive");
        MemorySystem {
            cfg,
            cycle: 0,
            ports: vec![[None; PORT_COUNT]; n_cores],
            // Preallocate to the architectural maxima so the steady-state
            // simulation loop never allocates: at most one outstanding
            // request per (core, port), at most one pending header store
            // per core (plus the mutator's slot).
            queue: VecDeque::with_capacity(n_cores * PORT_COUNT + PORT_COUNT),
            pending_header_stores: Vec::with_capacity(n_cores + 1),
            last_body_addr: vec![[None; 2]; n_cores],
            header_cache: vec![None; cfg.header_cache_entries],
            reorder_state: cfg.service_reorder_seed.map(|s| s | 1),
            stats: MemStats::default(),
            occupied: 0,
            in_service: 0,
            blocked: 0,
            complete: 0,
            next_retire: u64::MAX,
            retire_cal: BinaryHeap::with_capacity(n_cores * PORT_COUNT + PORT_COUNT),
            pending_stores_dirty: false,
            wake_feed: None,
            events: None,
        }
    }

    // --- event log -----------------------------------------------------

    /// Turn on the cycle-stamped transition log. Intended for the
    /// observability layer and test harnesses; off by default.
    pub fn enable_event_log(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Is the transition log enabled?
    pub fn event_log_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Take ownership of the recorded events (empty if logging was off).
    pub fn take_event_log(&mut self) -> Vec<MemEventRecord> {
        self.events.take().unwrap_or_default()
    }

    // --- sparse-engine wake feed ---------------------------------------

    /// Turn on the wake feed (see the `wake_feed` field). Off by default;
    /// the naive loop pays nothing.
    pub fn enable_wake_feed(&mut self, n_cores: usize) {
        // One outstanding transaction per (core, port): a single tick can
        // retire at most PORT_COUNT entries per core.
        self.wake_feed = Some(Vec::with_capacity(n_cores * PORT_COUNT));
    }

    /// Core ids whose transactions retired since the last
    /// [`MemorySystem::clear_wakes`] (duplicates possible — one entry per
    /// retirement).
    pub fn wakes(&self) -> &[usize] {
        self.wake_feed.as_deref().unwrap_or(&[])
    }

    /// Forget the drained wake notifications.
    pub fn clear_wakes(&mut self) {
        if let Some(feed) = &mut self.wake_feed {
            feed.clear();
        }
    }

    #[inline]
    fn push_wake(&mut self, core: usize) {
        if let Some(feed) = &mut self.wake_feed {
            feed.push(core);
        }
    }

    #[inline]
    fn log(&mut self, event: MemEvent) {
        if let Some(events) = &mut self.events {
            events.push(MemEventRecord {
                cycle: self.cycle,
                event,
            });
        }
    }

    /// Align the memory clock with an external cycle counter (the engine
    /// does this after the sequential root phase, which charges cycles
    /// without ticking the memory system). Only legal while no traffic is
    /// in flight: every `done_at` is derived from the clock at service
    /// start, so jumping with transactions pending would warp them.
    pub fn set_cycle(&mut self, cycle: u64) {
        assert!(cycle >= self.cycle, "memory clock may not go backwards");
        assert!(
            self.occupied == 0 && self.queue.is_empty(),
            "set_cycle with traffic in flight"
        );
        self.cycle = cycle;
    }

    /// Pop the next request to serve: FIFO normally, a seeded random pick
    /// under `service_reorder_seed`.
    fn pop_service(&mut self) -> Option<(usize, Port)> {
        match self.reorder_state.as_mut() {
            None => self.queue.pop_front(),
            Some(state) => {
                if self.queue.is_empty() {
                    return None;
                }
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                self.queue.remove(*state as usize % self.queue.len())
            }
        }
    }

    fn cache_lookup(&mut self, addr: u32) -> bool {
        if self.header_cache.is_empty() {
            return false;
        }
        let set = addr as usize % self.header_cache.len();
        if self.header_cache[set] == Some(addr) {
            self.stats.header_cache_hits += 1;
            true
        } else {
            self.stats.header_cache_misses += 1;
            false
        }
    }

    fn cache_fill(&mut self, addr: u32) {
        if self.header_cache.is_empty() {
            return;
        }
        let set = addr as usize % self.header_cache.len();
        self.header_cache[set] = Some(addr);
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance one cycle: complete finished services, unblock header loads
    /// whose matching stores retired, and start service for up to
    /// `bandwidth` queued requests. Call once per engine cycle, before the
    /// cores tick.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;

        // 1. Retire in-service transactions that are done: pop exactly
        // the due entries off the retirement calendar (min-ordered, so
        // ties retire in the same `(core, port)` order the old full port
        // scan produced). `next_retire` is the calendar's minimum, so
        // cycles with nothing to retire cost one comparison.
        if self.in_service > 0 && self.next_retire <= self.cycle {
            while let Some(&Reverse((done_at, core, port_idx))) = self.retire_cal.peek() {
                if done_at > self.cycle {
                    break;
                }
                self.retire_cal.pop();
                let core = core as usize;
                let port = Port::ALL[port_idx as usize];
                let txn = self.ports[core][port_idx as usize]
                    .as_mut()
                    .expect("calendar entry without a transaction");
                debug_assert_eq!(txn.state, TxnState::InService { done_at });
                self.in_service -= 1;
                if port.is_load() {
                    txn.state = TxnState::Complete;
                    self.complete += 1;
                } else {
                    // Stores retire fully; free the buffer.
                    if port == Port::HeaderStore {
                        let addr = txn.addr;
                        remove_one(&mut self.pending_header_stores, addr);
                        self.pending_stores_dirty = true;
                    }
                    self.ports[core][port_idx as usize] = None;
                    self.occupied -= 1;
                }
                self.log(MemEvent::Retire {
                    core: core as u32,
                    port,
                });
                self.push_wake(core);
            }
            self.next_retire = match self.retire_cal.peek() {
                Some(&Reverse((done_at, _, _))) => done_at,
                None => u64::MAX,
            };
        }

        // 2. Unblock header loads (comparator array re-check). A blocked
        // load can only unblock on a cycle where a pending header store
        // retired; otherwise every blocked load just re-counts.
        if self.blocked > 0 {
            if self.pending_stores_dirty {
                for core in 0..self.ports.len() {
                    if let Some(txn) = &mut self.ports[core][Port::HeaderLoad as usize] {
                        if txn.state == TxnState::Blocked {
                            if self.pending_header_stores.contains(&txn.addr) {
                                self.stats.comparator_blocked_cycles += 1;
                            } else {
                                txn.state = TxnState::Queued;
                                let addr = txn.addr;
                                self.blocked -= 1;
                                self.queue.push_back((core, Port::HeaderLoad));
                                self.log(MemEvent::CompUnblocked {
                                    core: core as u32,
                                    addr,
                                });
                            }
                        }
                    }
                }
            } else {
                // No store retired since the last re-check: every blocked
                // load is still blocked (its matching store is still
                // pending), exactly as the scan would conclude.
                self.stats.comparator_blocked_cycles += self.blocked as u64;
            }
        }
        self.pending_stores_dirty = false;

        // 3. DRAM accepts up to `bandwidth` queued requests.
        if !self.queue.is_empty() {
            self.stats.queue_occupancy_sum += self.queue.len() as u64;
            self.stats.queue_busy_cycles += 1;
            for _ in 0..self.cfg.bandwidth {
                let Some((core, port)) = self.pop_service() else {
                    break;
                };
                let latency = self.access_latency(core, port);
                self.log(MemEvent::ServiceStart {
                    core: core as u32,
                    port,
                    latency,
                });
                if latency == 0 {
                    // Burst continuation: the open-row access completes
                    // within this memory cycle — data is ready when the
                    // core ticks.
                    let txn = self.ports[core][port as usize].take().expect("queued txn");
                    debug_assert_eq!(txn.state, TxnState::Queued);
                    if port.is_load() {
                        self.ports[core][port as usize] = Some(Txn {
                            state: TxnState::Complete,
                            ..txn
                        });
                        self.complete += 1;
                    } else {
                        self.occupied -= 1;
                        if port == Port::HeaderStore {
                            remove_one(&mut self.pending_header_stores, txn.addr);
                            self.pending_stores_dirty = true;
                        }
                    }
                    self.log(MemEvent::Retire {
                        core: core as u32,
                        port,
                    });
                    self.push_wake(core);
                    continue;
                }
                let done_at = self.cycle + latency as u64;
                let txn = self.ports[core][port as usize]
                    .as_mut()
                    .expect("queued transaction must exist");
                debug_assert_eq!(txn.state, TxnState::Queued);
                txn.state = TxnState::InService { done_at };
                self.in_service += 1;
                self.retire_cal
                    .push(Reverse((done_at, core as u32, port as u8)));
                self.next_retire = self.next_retire.min(done_at);
            }
        }
    }

    /// Effective latency of the transaction sitting in `(core, port)`:
    /// body accesses that continue a sequential stream complete at burst
    /// speed (0 = ready next cycle); header accesses and stream starts pay
    /// the full random-access latency. The Figure 6 artificial latency is
    /// added to everything.
    fn access_latency(&mut self, core: usize, port: Port) -> u32 {
        let latency = self.peek_latency(core, port);
        if let Port::BodyLoad | Port::BodyStore = port {
            let addr = self.ports[core][port as usize].as_ref().expect("txn").addr;
            let slot = if port == Port::BodyLoad { 0 } else { 1 };
            self.last_body_addr[core][slot] = Some(addr);
        }
        latency
    }

    /// [`MemorySystem::access_latency`] without the burst-state update:
    /// what service for `(core, port)` *would* cost if it started now.
    /// Exact for every queued transaction, because distinct queue entries
    /// occupy distinct `(core, port)` buffers and therefore distinct burst
    /// trackers.
    fn peek_latency(&self, core: usize, port: Port) -> u32 {
        let txn = self.ports[core][port as usize].as_ref().expect("txn");
        let base = match port {
            Port::BodyLoad | Port::BodyStore => {
                let slot = if port == Port::BodyLoad { 0 } else { 1 };
                if self.last_body_addr[core][slot] == Some(txn.addr.wrapping_sub(1)) {
                    0
                } else {
                    self.cfg.latency
                }
            }
            _ => self.cfg.latency,
        };
        base + self.cfg.extra_latency
    }

    /// Issue a request on `(core, port)`. Returns `false` (core stalls)
    /// when the buffer is still busy with the previous request.
    ///
    /// Header loads to an address with a pending header store enter the
    /// blocked state and are only queued once the store retires.
    pub fn try_issue(&mut self, core: usize, port: Port, addr: u32) -> bool {
        if self.ports[core][port as usize].is_some() {
            return false;
        }
        let mut state = TxnState::Queued;
        if port == Port::HeaderLoad && self.pending_header_stores.contains(&addr) {
            // Comparator array: ordered behind the store regardless of any
            // cached copy.
            state = TxnState::Blocked;
        } else if port == Port::HeaderLoad && self.cache_lookup(addr) {
            // Header-cache hit: served on-chip, ready next cycle, no DRAM
            // bandwidth consumed.
            state = TxnState::Complete;
        }
        if port == Port::HeaderLoad && state == TxnState::Queued {
            // The returning line fills the cache (tag set at issue; the
            // model is timing-only).
            self.cache_fill(addr);
        }
        if port == Port::HeaderStore {
            self.pending_header_stores.push(addr);
            // Write-through: the stored header is cached.
            self.cache_fill(addr);
        }
        self.ports[core][port as usize] = Some(Txn {
            addr,
            state,
            issued_at: self.cycle,
        });
        self.occupied += 1;
        self.log(MemEvent::Issue {
            core: core as u32,
            port,
            addr,
        });
        match state {
            TxnState::Queued => self.queue.push_back((core, port)),
            TxnState::Blocked => {
                self.blocked += 1;
                self.log(MemEvent::CompBlocked {
                    core: core as u32,
                    addr,
                });
            }
            TxnState::Complete => {
                self.complete += 1;
                self.log(MemEvent::CacheHit {
                    core: core as u32,
                    addr,
                });
            }
            TxnState::InService { .. } => unreachable!("issue never starts service"),
        }
        self.stats.issued[port as usize] += 1;
        true
    }

    /// Is the buffer `(core, port)` occupied (request in flight or load
    /// data not yet consumed)?
    pub fn port_busy(&self, core: usize, port: Port) -> bool {
        self.ports[core][port as usize].is_some()
    }

    /// Has the load on `(core, port)` completed (data available)?
    ///
    /// # Panics
    /// Panics when called on a store port.
    pub fn load_ready(&self, core: usize, port: Port) -> bool {
        assert!(port.is_load());
        matches!(
            self.ports[core][port as usize],
            Some(Txn {
                state: TxnState::Complete,
                ..
            })
        )
    }

    /// Consume the completed load on `(core, port)`, freeing the buffer.
    /// Returns the address the load targeted (the caller samples the heap).
    ///
    /// # Panics
    /// Panics if the load is not complete — the core must check
    /// [`MemorySystem::load_ready`] and stall otherwise.
    pub fn consume_load(&mut self, core: usize, port: Port) -> u32 {
        assert!(port.is_load());
        let txn = self.ports[core][port as usize]
            .take()
            .expect("no load in buffer");
        assert_eq!(
            txn.state,
            TxnState::Complete,
            "load consumed before completion"
        );
        self.occupied -= 1;
        self.complete -= 1;
        self.log(MemEvent::Consume {
            core: core as u32,
            port,
        });
        txn.addr
    }

    /// True when every buffer of every core is empty (all stores committed,
    /// all loads consumed) — the end-of-cycle flush condition.
    pub fn all_idle(&self) -> bool {
        self.occupied == 0
    }

    /// Is a header store to `addr` pending (comparator array view)?
    pub fn header_store_pending(&self, addr: u32) -> bool {
        self.pending_header_stores.contains(&addr)
    }

    /// The event horizon for fast-forwarding: the cycle at which the
    /// earliest in-service transaction completes, provided nothing else
    /// can happen before then. Returns `None` when the next cycle is not a
    /// pure wait — a request is still queued for service (DRAM would start
    /// it next tick), completed load data is waiting to be consumed, or no
    /// transaction is in service at all.
    ///
    /// When `Some(done_at)` is returned, every tick up to `done_at - 1`
    /// is observationally identical for the cores (no retirement, no
    /// unblocking, no service start), so the engine may skip them —
    /// replicating per-cycle statistics via [`MemorySystem::fast_forward`].
    pub fn next_event_cycle(&self) -> Option<u64> {
        // Queued requests start service next tick; completed load data is
        // consumed by the owning core's next tick — neither is a dead
        // cycle. Blocked header loads only move when the matching store
        // retires, which is itself an in-service completion — covered by
        // the horizon — except for a zero-latency store retiring at
        // service start, which leaves the dirty flag set for the next
        // tick's comparator re-check. All tracked by counter/flag, O(1).
        if !self.queue.is_empty()
            || self.complete > 0
            || self.pending_stores_dirty
            || self.in_service == 0
        {
            return None;
        }
        Some(self.next_retire)
    }

    /// The next cycle at which this memory system can change any state a
    /// core reads, assuming no new requests arrive in between. `None`
    /// means never: nothing queued, nothing in service, no comparator
    /// re-check pending — the memory system is quiet until a core acts.
    ///
    /// Unlike [`MemorySystem::next_event_cycle`] this does not demand
    /// global quiescence, so the sparse engine can jump while some cores
    /// still run: completed loads are ignored (their owners were already
    /// woken when the data arrived), and a non-empty queue or a pending
    /// re-check simply bounds the jump at the very next tick.
    pub fn next_activity_cycle(&self) -> Option<u64> {
        if !self.queue.is_empty() || self.pending_stores_dirty {
            return Some(self.cycle + 1);
        }
        if self.in_service == 0 {
            return None;
        }
        Some(self.next_retire)
    }

    /// Is the coming tick *core-invisible*? True when its only effects
    /// are internal bookkeeping: nothing retires (`next_retire` is past
    /// the next cycle), no completed load is waiting, and every queued
    /// request would enter service with a nonzero latency (a zero-latency
    /// burst start completes within the tick, which the owning core sees
    /// immediately). Header-load unblocking may still happen — Blocked →
    /// Queued changes nothing a core reads. The latency peek is exact for
    /// every queued entry because distinct entries occupy distinct
    /// `(core, port)` buffers and thus distinct burst trackers.
    ///
    /// When true, the engine may run [`MemorySystem::tick`] for real and
    /// replicate the cores' stalled cycle without ticking them — every
    /// input the cores read is unchanged.
    pub fn next_tick_starts_service_only(&self) -> bool {
        if self.queue.is_empty() || self.complete > 0 || self.next_retire <= self.cycle + 1 {
            return false;
        }
        self.queue
            .iter()
            .all(|&(core, port)| self.peek_latency(core, port) > 0)
    }

    /// Skip `k` cycles in one jump. Only legal when
    /// [`MemorySystem::next_event_cycle`] returned `Some(done_at)` and
    /// `cycle + k < done_at`: the skipped ticks would each have retired
    /// nothing, started no service (empty queue ⇒ zero occupancy, not
    /// busy) and merely re-counted every comparator-blocked header load.
    pub fn fast_forward(&mut self, k: u64) {
        debug_assert!(self.queue.is_empty(), "fast-forward with queued requests");
        self.cycle += k;
        self.stats.cycles += k;
        self.stats.comparator_blocked_cycles += k * self.blocked as u64;
    }

    /// Statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Consume the drained memory system, yielding its statistics without
    /// a clone (end-of-collection epilogue).
    pub fn into_stats(self) -> MemStats {
        self.stats
    }

    /// Requests currently waiting for DRAM service (monitoring).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Age (in cycles) of the oldest in-flight transaction, if any —
    /// diagnostic for deadlock hunting in the engine.
    pub fn oldest_inflight_age(&self) -> Option<u64> {
        self.ports
            .iter()
            .flatten()
            .flatten()
            .map(|t| self.cycle.saturating_sub(t.issued_at))
            .max()
    }

    // --- conservative-window support (parallel engine) -----------------

    /// May a conservative window open at the current instant? True only
    /// in a *pure in-service* state, where every coming tick up to the
    /// next retirement is closed-form predictable:
    ///
    /// * no request queued for service (a service start changes burst
    ///   trackers and can retire a zero-latency burst within the tick),
    /// * no comparator re-check pending (an unblocking moves a load into
    ///   the queue),
    /// * no completed load waiting (its owner consumes it next tick),
    /// * FIFO service order (the xorshift reorderer makes skipped ticks
    ///   depend on queue contents the planner does not model), and
    /// * the event log off (skipped ticks would have logged transitions
    ///   that [`MemorySystem::apply_body_window`] cannot replicate).
    ///
    /// Blocked header loads are fine: with no store retiring inside the
    /// window they merely re-count, replicated in bulk on apply.
    pub fn window_ready(&self) -> bool {
        self.queue.is_empty()
            && !self.pending_stores_dirty
            && self.complete == 0
            && self.reorder_state.is_none()
            && self.events.is_none()
    }

    /// Snapshot `core`'s body ports for the window planner, or `None` if
    /// either body port holds a transaction that is not in service.
    pub fn body_ports_view(&self, core: usize) -> Option<BodyPortsView> {
        let view = |port: Port| match self.ports[core][port as usize] {
            None => Some(None),
            Some(Txn {
                addr,
                state: TxnState::InService { done_at },
                issued_at,
            }) => Some(Some(InflightTxnView {
                addr,
                done_at,
                issued_at,
            })),
            Some(_) => None,
        };
        Some(BodyPortsView {
            load: view(Port::BodyLoad)?,
            store: view(Port::BodyStore)?,
            last_load_addr: self.last_body_addr[core][0],
            last_store_addr: self.last_body_addr[core][1],
        })
    }

    /// Earliest retirement cycle over all of `core`'s in-flight
    /// transactions, or `None` if nothing of `core`'s is in service.
    /// Blocked header loads contribute nothing: they only move when the
    /// matching store retires, and that store is itself in service on
    /// its owning core, whose bound covers the unblocking.
    pub fn earliest_retire(&self, core: usize) -> Option<u64> {
        self.ports[core]
            .iter()
            .flatten()
            .filter_map(|t| match t.state {
                TxnState::InService { done_at } => Some(done_at),
                _ => None,
            })
            .min()
    }

    /// Commit a planned conservative window ending at `end_cycle`:
    /// advance the clock and replicate, in bulk, exactly the statistics
    /// the skipped ticks would have accumulated, then replace each
    /// patched core's body-port transactions and burst trackers with
    /// their end-of-window state.
    ///
    /// The planner guarantees (gap rule) that no transaction retires at
    /// or after `end_cycle` within the window, so every replacement
    /// transaction is still in service (`done_at > end_cycle`) and the
    /// wake feed — empty on entry, because windows only open with every
    /// core parked and the feed drained — stays empty: in-window wakes
    /// were all self-wakes of the planned cores, accounted for by the
    /// planner's stall tallies.
    pub fn apply_body_window(
        &mut self,
        end_cycle: u64,
        busy_ticks: u64,
        occupancy_sum: u64,
        patches: &[BodyWindowPatch],
    ) {
        debug_assert!(self.window_ready(), "window applied on a non-ready system");
        debug_assert!(end_cycle > self.cycle, "window must advance the clock");
        debug_assert!(
            self.wake_feed.as_ref().is_none_or(|f| f.is_empty()),
            "window applied with undrained wakes"
        );
        let w = end_cycle - self.cycle;
        self.cycle = end_cycle;
        self.stats.cycles += w;
        // Each skipped tick re-counted every still-blocked header load
        // (no store retires inside the window, so none unblocks).
        self.stats.comparator_blocked_cycles += w * self.blocked as u64;
        self.stats.queue_busy_cycles += busy_ticks;
        self.stats.queue_occupancy_sum += occupancy_sum;
        for patch in patches {
            self.stats.issued[Port::BodyLoad as usize] += patch.issued_loads;
            self.stats.issued[Port::BodyStore as usize] += patch.issued_stores;
            for (port, done) in [(Port::BodyLoad, patch.load), (Port::BodyStore, patch.store)] {
                let slot = &mut self.ports[patch.core][port as usize];
                debug_assert!(
                    !matches!(
                        slot,
                        Some(Txn {
                            state: TxnState::Blocked | TxnState::Queued | TxnState::Complete,
                            ..
                        })
                    ),
                    "patched body port was not in service"
                );
                let had = slot.is_some();
                match done {
                    Some(t) => {
                        debug_assert!(t.done_at > end_cycle, "final txn retires inside window");
                        if !had {
                            self.occupied += 1;
                            self.in_service += 1;
                        }
                        *slot = Some(Txn {
                            addr: t.addr,
                            state: TxnState::InService { done_at: t.done_at },
                            issued_at: t.issued_at,
                        });
                    }
                    None => {
                        if had {
                            self.occupied -= 1;
                            self.in_service -= 1;
                        }
                        *slot = None;
                    }
                }
            }
            self.last_body_addr[patch.core][0] = patch.last_load_addr;
            self.last_body_addr[patch.core][1] = patch.last_store_addr;
        }
        // The calendar still holds entries for the transactions the
        // window consumed (a binary heap cannot remove), so rebuild it
        // from the port buffers — bounded by the buffer count, and the
        // `(done_at, core, port)` ordering is restored by construction.
        self.retire_cal.clear();
        for (core, ports) in self.ports.iter().enumerate() {
            for (port_idx, txn) in ports.iter().enumerate() {
                if let Some(Txn {
                    state: TxnState::InService { done_at },
                    ..
                }) = txn
                {
                    self.retire_cal
                        .push(Reverse((*done_at, core as u32, port_idx as u8)));
                }
            }
        }
        self.next_retire = match self.retire_cal.peek() {
            Some(&Reverse((done_at, _, _))) => done_at,
            None => u64::MAX,
        };
    }
}

pub(crate) fn remove_one(v: &mut Vec<u32>, value: u32) {
    let idx = v
        .iter()
        .position(|&x| x == value)
        .expect("pending store missing");
    v.swap_remove(idx);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(n: usize) -> MemorySystem {
        MemorySystem::new(
            n,
            MemConfig {
                latency: 3,
                bandwidth: 2,
                header_fifo_capacity: 16,
                ..MemConfig::default()
            },
        )
    }

    #[test]
    fn load_completes_after_latency() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyLoad, 100));
        assert!(!m.load_ready(0, Port::BodyLoad));
        m.tick(); // service starts at cycle 1, completes at 4
        assert!(!m.load_ready(0, Port::BodyLoad));
        m.tick();
        m.tick();
        assert!(!m.load_ready(0, Port::BodyLoad));
        m.tick(); // cycle 4
        assert!(m.load_ready(0, Port::BodyLoad));
        assert_eq!(m.consume_load(0, Port::BodyLoad), 100);
        assert!(m.all_idle());
    }

    #[test]
    fn port_busy_until_consumed() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyLoad, 1));
        assert!(
            !m.try_issue(0, Port::BodyLoad, 2),
            "buffer holds previous load"
        );
        for _ in 0..10 {
            m.tick();
        }
        assert!(m.load_ready(0, Port::BodyLoad));
        assert!(
            !m.try_issue(0, Port::BodyLoad, 2),
            "unconsumed data still occupies buffer"
        );
        m.consume_load(0, Port::BodyLoad);
        assert!(m.try_issue(0, Port::BodyLoad, 2));
    }

    #[test]
    fn store_buffer_frees_on_completion() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyStore, 5));
        assert!(!m.try_issue(0, Port::BodyStore, 6));
        for _ in 0..4 {
            m.tick();
        }
        assert!(m.all_idle());
        assert!(m.try_issue(0, Port::BodyStore, 6));
    }

    #[test]
    fn bandwidth_limits_service_starts() {
        // 3 cores each issue a body load; bandwidth 2 ⇒ the third is
        // serviced one cycle later.
        let mut m = mem(3);
        for c in 0..3 {
            assert!(m.try_issue(c, Port::BodyLoad, c as u32));
        }
        for _ in 0..4 {
            m.tick();
        }
        // Cores 0 and 1 started at cycle 1 → done at cycle 4.
        assert!(m.load_ready(0, Port::BodyLoad));
        assert!(m.load_ready(1, Port::BodyLoad));
        assert!(
            !m.load_ready(2, Port::BodyLoad),
            "third request started a cycle later"
        );
        m.tick();
        assert!(m.load_ready(2, Port::BodyLoad));
    }

    #[test]
    fn comparator_array_orders_header_load_after_store() {
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        assert!(m.try_issue(1, Port::HeaderLoad, 42));
        assert!(m.header_store_pending(42));
        // Store: starts cycle 1, done cycle 4. Load blocked until then,
        // queued cycle 5 (after the tick notices), done cycle 5+3.
        for _ in 0..4 {
            m.tick();
        }
        assert!(!m.header_store_pending(42));
        assert!(
            !m.load_ready(1, Port::HeaderLoad),
            "load must not bypass the store"
        );
        for _ in 0..4 {
            m.tick();
        }
        assert!(m.load_ready(1, Port::HeaderLoad));
        assert!(m.stats().comparator_blocked_cycles > 0);
    }

    #[test]
    fn header_load_to_other_address_not_blocked() {
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        assert!(m.try_issue(1, Port::HeaderLoad, 43));
        for _ in 0..4 {
            m.tick();
        }
        assert!(m.load_ready(1, Port::HeaderLoad));
    }

    #[test]
    fn independent_ports_of_one_core() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::HeaderLoad, 1));
        assert!(m.try_issue(0, Port::HeaderStore, 2));
        assert!(m.try_issue(0, Port::BodyLoad, 3));
        assert!(m.try_issue(0, Port::BodyStore, 4));
        assert!(!m.all_idle());
        for _ in 0..12 {
            m.tick();
        }
        m.consume_load(0, Port::HeaderLoad);
        m.consume_load(0, Port::BodyLoad);
        assert!(m.all_idle());
        assert_eq!(m.stats().total_issued(), 4);
    }

    #[test]
    #[should_panic(expected = "load consumed before completion")]
    fn consuming_incomplete_load_panics() {
        let mut m = mem(1);
        m.try_issue(0, Port::BodyLoad, 9);
        m.consume_load(0, Port::BodyLoad);
    }

    #[test]
    fn horizon_is_earliest_completion() {
        let mut m = mem(2); // latency 3, bandwidth 2
        assert_eq!(m.next_event_cycle(), None, "idle system has no horizon");
        assert!(m.try_issue(0, Port::BodyLoad, 10));
        assert_eq!(m.next_event_cycle(), None, "queued request blocks skipping");
        m.tick(); // service starts at cycle 1, completes at 4
        assert!(m.try_issue(1, Port::BodyStore, 20));
        assert_eq!(m.next_event_cycle(), None, "new request is queued");
        m.tick(); // second service starts: done at 5
        assert_eq!(m.next_event_cycle(), Some(4));
        // Fast-forward to just before the horizon, then tick normally.
        m.fast_forward(4 - 1 - m.cycle());
        assert_eq!(m.cycle(), 3);
        m.tick();
        assert!(m.load_ready(0, Port::BodyLoad));
        m.consume_load(0, Port::BodyLoad);
        assert_eq!(m.next_event_cycle(), Some(5));
        m.tick();
        assert!(m.all_idle());
    }

    #[test]
    fn horizon_blocked_on_complete_load() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyLoad, 10));
        for _ in 0..4 {
            m.tick();
        }
        assert!(m.load_ready(0, Port::BodyLoad));
        assert_eq!(
            m.next_event_cycle(),
            None,
            "unconsumed load data is not a dead cycle"
        );
    }

    #[test]
    fn fast_forward_replicates_comparator_blocking() {
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        assert!(m.try_issue(1, Port::HeaderLoad, 42));
        m.tick(); // store in service (done at 4); load blocked
        let naive = {
            let mut n = m.clone();
            let mut ticks = 0;
            while !n.load_ready(1, Port::HeaderLoad) {
                n.tick();
                ticks += 1;
                assert!(ticks < 32);
            }
            n.stats().clone()
        };
        // Fast-forwarded: skip to one cycle before the store retires.
        let horizon = m.next_event_cycle().expect("store in service");
        m.fast_forward(horizon - 1 - m.cycle());
        while !m.load_ready(1, Port::HeaderLoad) {
            m.tick();
        }
        assert_eq!(m.stats(), &naive);
    }

    #[test]
    fn event_log_off_by_default_and_opt_in() {
        let mut m = mem(1);
        assert!(!m.event_log_enabled());
        assert!(m.try_issue(0, Port::BodyLoad, 1));
        for _ in 0..5 {
            m.tick();
        }
        m.consume_load(0, Port::BodyLoad);
        assert!(m.take_event_log().is_empty());
    }

    #[test]
    fn event_log_records_transaction_lifecycle() {
        let mut m = mem(1); // latency 3
        m.enable_event_log();
        assert!(m.try_issue(0, Port::BodyLoad, 7));
        for _ in 0..4 {
            m.tick();
        }
        m.consume_load(0, Port::BodyLoad);
        let events = m.take_event_log();
        assert_eq!(
            events,
            vec![
                MemEventRecord {
                    cycle: 0,
                    event: MemEvent::Issue {
                        core: 0,
                        port: Port::BodyLoad,
                        addr: 7
                    }
                },
                MemEventRecord {
                    cycle: 1,
                    event: MemEvent::ServiceStart {
                        core: 0,
                        port: Port::BodyLoad,
                        latency: 3
                    }
                },
                MemEventRecord {
                    cycle: 4,
                    event: MemEvent::Retire {
                        core: 0,
                        port: Port::BodyLoad
                    }
                },
                MemEventRecord {
                    cycle: 4,
                    event: MemEvent::Consume {
                        core: 0,
                        port: Port::BodyLoad
                    }
                },
            ]
        );
    }

    #[test]
    fn event_log_records_comparator_block_and_unblock() {
        let mut m = mem(2);
        m.enable_event_log();
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        assert!(m.try_issue(1, Port::HeaderLoad, 42));
        while !m.load_ready(1, Port::HeaderLoad) {
            m.tick();
        }
        let events = m.take_event_log();
        let blocked = events
            .iter()
            .position(|r| matches!(r.event, MemEvent::CompBlocked { core: 1, addr: 42 }));
        let unblocked = events
            .iter()
            .position(|r| matches!(r.event, MemEvent::CompUnblocked { core: 1, addr: 42 }));
        let store_retire = events.iter().position(|r| {
            matches!(
                r.event,
                MemEvent::Retire {
                    core: 0,
                    port: Port::HeaderStore
                }
            )
        });
        assert!(blocked.unwrap() < store_retire.unwrap());
        assert!(store_retire.unwrap() < unblocked.unwrap());
    }

    #[test]
    fn event_log_is_bit_exact_under_fast_forward() {
        // Dead-wait windows are transition-free, so skipping them must not
        // change the recorded stream.
        let run = |ff: bool| {
            let mut m = mem(1);
            m.enable_event_log();
            assert!(m.try_issue(0, Port::BodyLoad, 9));
            m.tick(); // service starts; done at 1 + 3 = 4
            if ff {
                let horizon = m.next_event_cycle().expect("in service");
                m.fast_forward(horizon - 1 - m.cycle());
            }
            while !m.load_ready(0, Port::BodyLoad) {
                m.tick();
            }
            m.consume_load(0, Port::BodyLoad);
            (m.take_event_log(), m.into_stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn set_cycle_aligns_the_clock() {
        let mut m = mem(1);
        m.enable_event_log();
        m.set_cycle(100);
        assert_eq!(m.cycle(), 100);
        assert!(m.try_issue(0, Port::BodyLoad, 3));
        assert_eq!(m.take_event_log()[0].cycle, 100);
    }

    #[test]
    #[should_panic(expected = "traffic in flight")]
    fn set_cycle_with_traffic_panics() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyLoad, 3));
        m.set_cycle(50);
    }

    #[test]
    fn queue_stats_accumulate() {
        let mut m = mem(4);
        for c in 0..4 {
            m.try_issue(c, Port::BodyLoad, c as u32);
        }
        m.tick();
        assert!(m.stats().queue_busy_cycles >= 1);
        assert!(m.stats().mean_queue_depth() > 0.0);
    }

    #[test]
    fn reordered_service_completes_every_request() {
        let mut m = MemorySystem::new(
            6,
            MemConfig {
                latency: 3,
                bandwidth: 1,
                header_fifo_capacity: 16,
                ..MemConfig::default()
            }
            .with_service_reorder(0xC0FFEE),
        );
        for c in 0..6 {
            assert!(m.try_issue(c, Port::BodyLoad, 100 + 2 * c as u32));
        }
        for _ in 0..40 {
            m.tick();
        }
        for c in 0..6 {
            assert!(m.load_ready(c, Port::BodyLoad), "core {c} starved");
            m.consume_load(c, Port::BodyLoad);
        }
        assert!(m.all_idle());
    }

    #[test]
    fn reordered_service_can_invert_arrival_order() {
        // bandwidth 1 and two queued loads: FIFO always serves core 0
        // first; some seed must serve core 1 first.
        let inverted = (0..32u64).any(|seed| {
            let mut m = MemorySystem::new(
                2,
                MemConfig {
                    latency: 4,
                    bandwidth: 1,
                    header_fifo_capacity: 16,
                    ..MemConfig::default()
                }
                .with_service_reorder(seed),
            );
            assert!(m.try_issue(0, Port::BodyLoad, 10));
            assert!(m.try_issue(1, Port::BodyLoad, 20));
            // First-served request: service starts at cycle 1, retires at
            // cycle 1 + latency = 5; the other starts a cycle later.
            for _ in 0..5 {
                m.tick();
            }
            m.load_ready(1, Port::BodyLoad) && !m.load_ready(0, Port::BodyLoad)
        });
        assert!(inverted, "no seed inverted the service order");
    }

    #[test]
    fn wake_feed_reports_retirements() {
        let mut m = mem(2); // latency 3, bandwidth 2
        m.enable_wake_feed(2);
        assert!(m.wakes().is_empty());
        assert!(m.try_issue(0, Port::BodyLoad, 10));
        assert!(m.try_issue(1, Port::BodyStore, 20));
        m.tick(); // both start service: done at cycle 4
        assert!(m.wakes().is_empty(), "nothing retired yet");
        m.tick();
        m.tick();
        m.tick(); // cycle 4: both retire
        assert_eq!(m.wakes(), &[0, 1]);
        m.clear_wakes();
        assert!(m.wakes().is_empty());
        m.consume_load(0, Port::BodyLoad);
        assert!(m.all_idle());
    }

    #[test]
    fn wake_feed_reports_zero_latency_burst_retirements() {
        // Sequential body stores: the second continues the burst and
        // retires within the tick that starts its service.
        let mut m = mem(1);
        m.enable_wake_feed(1);
        assert!(m.try_issue(0, Port::BodyStore, 100));
        for _ in 0..4 {
            m.tick();
        }
        assert_eq!(m.wakes(), &[0]);
        m.clear_wakes();
        assert!(m.try_issue(0, Port::BodyStore, 101));
        m.tick(); // burst continuation: latency 0, retires at service start
        assert_eq!(m.wakes(), &[0]);
        assert!(m.all_idle());
    }

    #[test]
    fn next_activity_tracks_queue_service_and_quiet() {
        let mut m = mem(2); // latency 3, bandwidth 2
        assert_eq!(m.next_activity_cycle(), None, "idle system is quiet");
        assert!(m.try_issue(0, Port::BodyLoad, 10));
        assert_eq!(
            m.next_activity_cycle(),
            Some(m.cycle() + 1),
            "queued request starts service next tick"
        );
        m.tick(); // service starts at cycle 1, retires at 4
        assert_eq!(m.next_activity_cycle(), Some(4));
        m.tick();
        assert_eq!(m.next_activity_cycle(), Some(4), "horizon is absolute");
        m.tick();
        m.tick(); // retires
        assert_eq!(
            m.next_activity_cycle(),
            None,
            "a completed load awaiting its owner is not future activity"
        );
        m.consume_load(0, Port::BodyLoad);
        assert_eq!(m.next_activity_cycle(), None);
    }

    #[test]
    fn next_activity_bounds_jump_at_pending_comparator_recheck() {
        // Under zero DRAM latency a header store retires within the tick
        // that starts its service, leaving the dirty flag set for the
        // *next* tick's comparator re-check; neither horizon may jump
        // past that tick.
        let mut m = MemorySystem::new(
            1,
            MemConfig {
                latency: 0,
                bandwidth: 1,
                header_fifo_capacity: 16,
                ..MemConfig::default()
            },
        );
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        m.tick(); // service starts and retires in one tick
        assert!(m.all_idle());
        assert_eq!(m.next_activity_cycle(), Some(m.cycle() + 1));
        assert_eq!(
            m.next_event_cycle(),
            None,
            "global horizon is equally conservative about the re-check"
        );
        m.tick();
        assert_eq!(m.next_activity_cycle(), None);
    }

    #[test]
    fn reordered_header_load_still_waits_for_matching_store() {
        for seed in 0..8u64 {
            let mut m = MemorySystem::new(
                2,
                MemConfig {
                    latency: 3,
                    bandwidth: 2,
                    header_fifo_capacity: 16,
                    ..MemConfig::default()
                }
                .with_service_reorder(seed),
            );
            assert!(m.try_issue(0, Port::HeaderStore, 42));
            assert!(m.try_issue(1, Port::HeaderLoad, 42));
            while !m.load_ready(1, Port::HeaderLoad) {
                assert!(
                    !(m.load_ready(1, Port::HeaderLoad) && m.header_store_pending(42)),
                    "seed {seed}: load bypassed the store"
                );
                m.tick();
            }
            assert!(
                !m.header_store_pending(42),
                "seed {seed}: store must retire first"
            );
        }
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn cached_mem() -> MemorySystem {
        MemorySystem::new(
            2,
            MemConfig {
                header_cache_entries: 16,
                ..MemConfig::default()
            },
        )
    }

    #[test]
    fn first_header_load_misses_second_hits() {
        let mut m = cached_mem();
        assert!(m.try_issue(0, Port::HeaderLoad, 42));
        assert!(!m.load_ready(0, Port::HeaderLoad), "cold miss goes to DRAM");
        for _ in 0..6 {
            m.tick();
        }
        m.consume_load(0, Port::HeaderLoad);
        assert!(m.try_issue(1, Port::HeaderLoad, 42));
        m.tick();
        assert!(
            m.load_ready(1, Port::HeaderLoad),
            "warm hit is ready next cycle"
        );
        m.consume_load(1, Port::HeaderLoad);
        assert_eq!(m.stats().header_cache_hits, 1);
        assert_eq!(m.stats().header_cache_misses, 1);
    }

    #[test]
    fn header_store_fills_the_cache() {
        let mut m = cached_mem();
        assert!(m.try_issue(0, Port::HeaderStore, 7));
        for _ in 0..6 {
            m.tick();
        }
        assert!(m.try_issue(1, Port::HeaderLoad, 7));
        m.tick();
        assert!(m.load_ready(1, Port::HeaderLoad), "write-through fill");
        m.consume_load(1, Port::HeaderLoad);
    }

    #[test]
    fn comparator_still_orders_cached_loads_behind_stores() {
        let mut m = cached_mem();
        // Warm the cache.
        assert!(m.try_issue(0, Port::HeaderStore, 9));
        for _ in 0..6 {
            m.tick();
        }
        // Pending store + load to the same address: the load must wait for
        // the store even though the address is cached.
        assert!(m.try_issue(0, Port::HeaderStore, 9));
        assert!(m.try_issue(1, Port::HeaderLoad, 9));
        m.tick();
        assert!(
            !m.load_ready(1, Port::HeaderLoad),
            "must not bypass the pending store"
        );
        for _ in 0..10 {
            m.tick();
        }
        assert!(m.load_ready(1, Port::HeaderLoad));
        m.consume_load(1, Port::HeaderLoad);
    }

    #[test]
    fn conflicting_tags_evict() {
        let mut m = MemorySystem::new(
            1,
            MemConfig {
                header_cache_entries: 4,
                ..MemConfig::default()
            },
        );
        for addr in [4u32, 8] {
            // both map to set 0
            assert!(m.try_issue(0, Port::HeaderLoad, addr));
            for _ in 0..6 {
                m.tick();
            }
            m.consume_load(0, Port::HeaderLoad);
        }
        // 4 was evicted by 8.
        assert!(m.try_issue(0, Port::HeaderLoad, 4));
        m.tick();
        assert!(!m.load_ready(0, Port::HeaderLoad));
        for _ in 0..6 {
            m.tick();
        }
        m.consume_load(0, Port::HeaderLoad);
        assert_eq!(m.stats().header_cache_hits, 0);
    }

    #[test]
    fn zero_entries_disable_the_cache() {
        let mut m = MemorySystem::new(1, MemConfig::default());
        assert!(m.try_issue(0, Port::HeaderLoad, 5));
        for _ in 0..6 {
            m.tick();
        }
        m.consume_load(0, Port::HeaderLoad);
        assert_eq!(
            m.stats().header_cache_hits + m.stats().header_cache_misses,
            0
        );
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use crate::backend::FinalTxn;

    fn mem(n: usize) -> MemorySystem {
        MemorySystem::new(
            n,
            MemConfig {
                latency: 3,
                bandwidth: 2,
                header_fifo_capacity: 16,
                ..MemConfig::default()
            },
        )
    }

    #[test]
    fn window_ready_only_in_pure_in_service_states() {
        let mut m = mem(1);
        // Fresh system: trivially pure (nothing in flight at all).
        assert!(m.window_ready());

        // Queued request: not ready (service would start next tick).
        assert!(m.try_issue(0, Port::BodyLoad, 100));
        assert!(!m.window_ready());

        // In service: ready again.
        m.tick();
        assert!(m.window_ready());

        // Completed, unconsumed: not ready.
        m.tick();
        m.tick();
        m.tick();
        assert!(m.load_ready(0, Port::BodyLoad));
        assert!(!m.window_ready());
        m.consume_load(0, Port::BodyLoad);
        assert!(m.window_ready());

        // Service-order randomization opts out wholesale.
        let cfg = MemConfig {
            service_reorder_seed: Some(7),
            ..MemConfig::default()
        };
        assert!(!MemorySystem::new(1, cfg).window_ready());

        // So does the event log.
        let mut logged = mem(1);
        logged.enable_event_log();
        assert!(!logged.window_ready());
    }

    #[test]
    fn window_ready_false_while_header_store_retirement_unprocessed() {
        // A normally-retiring header store is re-checked within the same
        // tick, but a zero-latency store retires *at service start*,
        // after the re-check already ran — the dirty flag then persists
        // to the next tick, and the window must wait for it.
        let mut m = MemorySystem::new(
            1,
            MemConfig {
                latency: 0,
                ..MemConfig::default()
            },
        );
        assert!(m.try_issue(0, Port::HeaderStore, 50));
        m.tick(); // service starts and retires in-tick: dirty flag set
        assert!(!m.window_ready());
        m.tick(); // re-check processed
        assert!(m.window_ready());
    }

    #[test]
    fn body_ports_view_reports_in_service_transactions() {
        let mut m = mem(1);
        assert!(m.try_issue(0, Port::BodyLoad, 100));
        assert!(m.try_issue(0, Port::BodyStore, 200));
        // Queued transactions refuse the view.
        assert_eq!(m.body_ports_view(0), None);
        m.tick(); // both start service (bandwidth 2), done at 4
        assert_eq!(
            m.body_ports_view(0),
            Some(BodyPortsView {
                load: Some(InflightTxnView {
                    addr: 100,
                    done_at: 4,
                    issued_at: 0,
                }),
                store: Some(InflightTxnView {
                    addr: 200,
                    done_at: 4,
                    issued_at: 0,
                }),
                last_load_addr: Some(100),
                last_store_addr: Some(200),
            })
        );
        // An idle core's view is empty but present.
        for _ in 0..4 {
            m.tick();
        }
        m.consume_load(0, Port::BodyLoad);
        assert_eq!(
            m.body_ports_view(0),
            Some(BodyPortsView {
                load: None,
                store: None,
                last_load_addr: Some(100),
                last_store_addr: Some(200),
            })
        );
    }

    #[test]
    fn earliest_retire_is_min_over_in_service_ports() {
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::BodyLoad, 100));
        m.tick(); // load in service, done at 4
        assert!(m.try_issue(0, Port::BodyStore, 200));
        m.tick(); // store in service, done at 5
        assert_eq!(m.earliest_retire(0), Some(4));
        assert_eq!(m.earliest_retire(1), None);
        // A blocked header load contributes nothing.
        assert!(m.try_issue(1, Port::HeaderStore, 50));
        m.tick(); // store in service, done at 6
        assert!(m.try_issue(0, Port::HeaderLoad, 50)); // blocked behind it
        assert_eq!(m.earliest_retire(0), Some(4));
        assert_eq!(m.earliest_retire(1), Some(6));
    }

    #[test]
    fn apply_body_window_replicates_skipped_tick_statistics() {
        let mut m = mem(2);
        m.enable_wake_feed(2);
        // Core 1's header store is in service past the window's end.
        assert!(m.try_issue(1, Port::HeaderStore, 50));
        m.tick(); // cycle 1: service starts, retires at 4
        m.clear_wakes();
        // A blocked header load re-counts once per skipped tick.
        assert!(m.try_issue(0, Port::HeaderLoad, 50));
        assert!(m.window_ready());
        let before = m.stats().clone();
        let cycle0 = m.cycle();

        // Window [2, 3]: core 0 "ran" a copy plan that issued two body
        // loads and one body store, consumed one load, and parked on the
        // second load, still in flight at the window's end.
        let patch = BodyWindowPatch {
            core: 0,
            issued_loads: 2,
            issued_stores: 1,
            load: Some(FinalTxn {
                addr: 101,
                done_at: 9,
                issued_at: 2,
            }),
            store: None,
            last_load_addr: Some(101),
            last_store_addr: Some(200),
        };
        m.apply_body_window(3, 2, 3, &[patch]);

        assert_eq!(m.cycle(), 3);
        let s = m.stats();
        assert_eq!(s.cycles, before.cycles + (3 - cycle0));
        assert_eq!(
            s.comparator_blocked_cycles,
            before.comparator_blocked_cycles + (3 - cycle0)
        );
        assert_eq!(s.queue_busy_cycles, before.queue_busy_cycles + 2);
        assert_eq!(s.queue_occupancy_sum, before.queue_occupancy_sum + 3);
        assert_eq!(
            s.issued[Port::BodyLoad as usize],
            before.issued[Port::BodyLoad as usize] + 2
        );
        assert_eq!(
            s.issued[Port::BodyStore as usize],
            before.issued[Port::BodyStore as usize] + 1
        );
        assert_eq!(
            m.body_ports_view(0),
            Some(BodyPortsView {
                load: Some(InflightTxnView {
                    addr: 101,
                    done_at: 9,
                    issued_at: 2,
                }),
                store: None,
                last_load_addr: Some(101),
                last_store_addr: Some(200),
            })
        );

        // The rebuilt calendar retires the untouched header store first
        // (cycle 4, which also unblocks and serves core 0's header
        // load), then the patched-in body load (cycle 9), with wakes.
        m.tick();
        assert_eq!(m.wakes(), &[1]);
        m.clear_wakes();
        for _ in 0..3 {
            m.tick(); // header load: service at 4, retires at 7
        }
        assert_eq!(m.wakes(), &[0]);
        m.clear_wakes();
        assert_eq!(m.consume_load(0, Port::HeaderLoad), 50);
        m.tick();
        m.tick(); // cycle 9: the patched-in body load retires
        assert_eq!(m.wakes(), &[0]);
        assert!(m.load_ready(0, Port::BodyLoad));
        assert_eq!(m.consume_load(0, Port::BodyLoad), 101);
    }
}
