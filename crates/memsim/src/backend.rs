//! The pluggable memory-timing boundary.
//!
//! [`MemBackend`] is the `DelaySimulator`-style trait the engine is
//! generic over: it owns request service timing, retirement scheduling,
//! and the calendar/fast-forward contracts that the event-horizon
//! fast-forward (naive loop) and the sparse active-set engine both lean
//! on. Two implementations ship:
//!
//! * [`MemorySystem`](crate::MemorySystem) — the fixed latency/bandwidth
//!   model the repo has always had (the paper's regime). The trait impl
//!   is pure delegation to the inherent methods, so routing the engine
//!   through the trait is bit-exact by construction; the differential
//!   wall (`crates/check`, `BENCH_simulator.json` pinning) enforces it.
//! * [`DramMemorySystem`](crate::DramMemorySystem) — a bank/row DRAM
//!   timing model with row-buffer hit/miss/conflict latencies, per-bank
//!   queues and an open/closed-page policy knob (see [`crate::dram`]).
//!
//! # Contract (proof obligations for every implementation)
//!
//! The engine's clock-skipping machinery is only sound if the backend
//! upholds the following; the property tests in
//! `crates/memsim/tests/backend_contracts.rs` exercise each point on
//! both implementations against a shadow-naive run:
//!
//! 1. **Horizon soundness** ([`MemBackend::next_event_cycle`]): when it
//!    returns `Some(c)`, every tick strictly before `c` is
//!    *observationally identical* for the cores — no retirement, no
//!    comparator unblocking that a core could read, no service start.
//!    `None` whenever the next tick is not a pure wait.
//! 2. **Activity lower bound** ([`MemBackend::next_activity_cycle`]):
//!    when it returns `Some(c)`, no state a core reads changes before
//!    cycle `c` (assuming no new requests arrive); `None` means the
//!    memory system is quiet forever absent new requests. It may be
//!    conservative (earlier than the real next change) but never late —
//!    the sparse engine jumps straight to `c` when every core is parked.
//! 3. **Service-only ticks** ([`MemBackend::next_tick_starts_service_only`]):
//!    `true` only if the coming tick's effects are core-invisible (no
//!    retirement, no completed load waiting, every service start has a
//!    nonzero latency).
//! 4. **Fast-forward replication** ([`MemBackend::fast_forward`]): after
//!    `fast_forward(k)` under the rule of (1)/(3), the statistics and
//!    event log must equal a `k`-fold naive `tick()` sequence bit for
//!    bit (dead-wait windows are transition-free, so the log gains
//!    nothing; per-cycle counters are replicated in bulk).
//! 5. **Wake completeness** ([`MemBackend::wakes`]): with the feed
//!    enabled, every retirement that can change the outcome of a core's
//!    retry pushes that core's id before the engine drains the feed — a
//!    parked core is woken by the feed or not at all.

use crate::dram::DramConfig;
use crate::system::{MemConfig, MemEventRecord, MemStats, MemorySystem, Port};

/// Which memory-timing backend the engine instantiates. Carried inside
/// [`MemConfig`] so every existing config-construction site (struct
/// update syntax on `MemConfig::default()`) picks up the knob for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBackendKind {
    /// The fixed latency/bandwidth model ([`MemorySystem`]) — the
    /// default, and the paper's configuration.
    Fixed,
    /// The bank/row DRAM timing model
    /// ([`DramMemorySystem`](crate::DramMemorySystem)) with the given
    /// timing parameters.
    Dram(DramConfig),
}

/// Parse the `HWGC_MEM_BACKEND` environment knob (mirrors
/// `hwgc_core::config::sparse_from` / `hwgc_check`'s `jobs_from`).
///
/// Grammar (ASCII case-insensitive, surrounding whitespace ignored):
///
/// * unset / empty / `fixed` — the fixed-latency backend;
/// * `dram` — the DRAM backend with default timings
///   ([`DramConfig::default`]);
/// * `dram:<preset>` — a named timing preset (`150ns`, `120ns`,
///   `100ns`, `80ns`; see [`DramConfig::preset`]);
/// * either DRAM form may append `:open` or `:closed` to pick the
///   page policy, e.g. `dram:100ns:closed`.
///
/// Anything unrecognized falls back to `Fixed` — an experiment sweep
/// with a typo'd knob must still run, and the backend in use is
/// visible in the stats (`MemStats::dram` is `Some` only for DRAM).
pub fn backend_from(var: Option<&str>) -> MemBackendKind {
    let Some(raw) = var else {
        return MemBackendKind::Fixed;
    };
    let text = raw.trim().to_ascii_lowercase();
    if text.is_empty() || text == "fixed" {
        return MemBackendKind::Fixed;
    }
    let mut parts = text.split(':');
    if parts.next() != Some("dram") {
        return MemBackendKind::Fixed;
    }
    let mut cfg = DramConfig::default();
    for part in parts {
        if let Some(preset) = DramConfig::preset(part) {
            cfg = DramConfig {
                page_policy: cfg.page_policy,
                ..preset
            };
        } else if let Some(policy) = crate::dram::PagePolicy::parse(part) {
            cfg.page_policy = policy;
        } else {
            return MemBackendKind::Fixed;
        }
    }
    MemBackendKind::Dram(cfg)
}

/// A body-port transaction as seen by the parallel engine's window
/// planner: its target address and absolute retirement cycle. Only
/// in-service transactions are viewable — a backend must refuse the view
/// (return `None` from [`MemBackend::body_ports_view`]) while a body
/// transaction is still queued, blocked, or completed-but-unconsumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightTxnView {
    pub addr: u32,
    pub done_at: u64,
    pub issued_at: u64,
}

/// Snapshot of one core's two body ports plus their burst trackers (the
/// last *serviced* body address per direction), enough for the window
/// planner to extrapolate the core's copy stream without ticking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodyPortsView {
    pub load: Option<InflightTxnView>,
    pub store: Option<InflightTxnView>,
    pub last_load_addr: Option<u32>,
    pub last_store_addr: Option<u32>,
}

/// Final state of one body-port transaction at the end of a conservative
/// window: in service, retiring strictly after the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalTxn {
    pub addr: u32,
    pub done_at: u64,
    pub issued_at: u64,
}

/// Per-core patch applied by [`MemBackend::apply_body_window`]: the body
/// ports' replacement transactions, the advanced burst trackers, and the
/// issue counts the skipped ticks would have accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodyWindowPatch {
    pub core: usize,
    pub issued_loads: u64,
    pub issued_stores: u64,
    pub load: Option<FinalTxn>,
    pub store: Option<FinalTxn>,
    pub last_load_addr: Option<u32>,
    pub last_store_addr: Option<u32>,
}

/// The memory-timing backend the engine drives (see the module docs for
/// the contract). Method semantics are specified on the fixed-latency
/// reference implementation, [`MemorySystem`]; implementations may only
/// differ in *when* transactions complete, never in the request/consume
/// protocol or the comparator-array ordering guarantee.
pub trait MemBackend {
    /// Construct the backend for `n_cores` cores. The timing parameters
    /// come from `cfg` (including `cfg.backend` for implementations
    /// configured through [`MemBackendKind`]).
    fn new_backend(n_cores: usize, cfg: MemConfig) -> Self
    where
        Self: Sized;

    /// Advance one cycle (retire, re-check the comparator, start
    /// service). See [`MemorySystem::tick`].
    fn tick(&mut self);

    /// Issue a request; `false` means the `(core, port)` buffer is busy.
    /// See [`MemorySystem::try_issue`].
    fn try_issue(&mut self, core: usize, port: Port, addr: u32) -> bool;

    /// Is the `(core, port)` buffer occupied?
    fn port_busy(&self, core: usize, port: Port) -> bool;

    /// Has the load on `(core, port)` completed?
    fn load_ready(&self, core: usize, port: Port) -> bool;

    /// Consume a completed load, freeing the buffer.
    fn consume_load(&mut self, core: usize, port: Port) -> u32;

    /// Are all buffers of all cores empty?
    fn all_idle(&self) -> bool;

    /// Is a header store to `addr` pending (comparator-array view)?
    fn header_store_pending(&self, addr: u32) -> bool;

    /// Global event horizon for the naive fast-forward (contract
    /// obligation 1). See [`MemorySystem::next_event_cycle`].
    fn next_event_cycle(&self) -> Option<u64>;

    /// Conservative lower bound on the next core-visible change
    /// (contract obligation 2). See
    /// [`MemorySystem::next_activity_cycle`].
    fn next_activity_cycle(&self) -> Option<u64>;

    /// Is the coming tick core-invisible (contract obligation 3)? See
    /// [`MemorySystem::next_tick_starts_service_only`].
    fn next_tick_starts_service_only(&self) -> bool;

    /// Skip `k` dead-wait cycles in one jump (contract obligation 4).
    fn fast_forward(&mut self, k: u64);

    /// Align the memory clock with the engine clock (only legal with no
    /// traffic in flight).
    fn set_cycle(&mut self, cycle: u64);

    /// Current cycle number.
    fn cycle(&self) -> u64;

    /// The active configuration.
    fn config(&self) -> &MemConfig;

    /// Latency, in cycles, of one uncontended random read — what the
    /// sequential root phase charges per root header fetch (the
    /// artificial `extra_latency` knob is *not* included, matching the
    /// engine's historical `cfg.latency`-based charge). The fixed
    /// backend returns exactly `cfg.latency`; the DRAM backend returns
    /// its closed-row access time (`t_rcd + t_cas`).
    fn uncontended_read_latency(&self) -> u32;

    /// Turn on the cycle-stamped transition log.
    fn enable_event_log(&mut self);

    /// Is the transition log enabled?
    fn event_log_enabled(&self) -> bool;

    /// Take ownership of the recorded events.
    fn take_event_log(&mut self) -> Vec<MemEventRecord>;

    /// Turn on the sparse-engine wake feed (contract obligation 5).
    fn enable_wake_feed(&mut self, n_cores: usize);

    /// Core ids whose transactions retired since the last
    /// [`MemBackend::clear_wakes`].
    fn wakes(&self) -> &[usize];

    /// Forget the drained wake notifications.
    fn clear_wakes(&mut self);

    /// Statistics so far.
    fn stats(&self) -> &MemStats;

    /// Consume the drained backend, yielding its statistics.
    fn into_stats(self) -> MemStats
    where
        Self: Sized;

    /// Requests currently waiting for service (monitoring).
    fn queue_len(&self) -> usize;

    /// Age of the oldest in-flight transaction (deadlock diagnostics).
    fn oldest_inflight_age(&self) -> Option<u64>;

    // --- Conservative-window support (the parallel engine) ----------
    //
    // The four methods below are the optional fast path the `Par`
    // engine's window planner uses to advance all-parked copy phases
    // without ticking. A backend that cannot replicate its per-tick
    // statistics in closed form keeps the defaults: `window_ready`
    // stays `false`, windows never open on it, and the engine falls
    // back to the (bit-exact) sparse per-cycle loop. The DRAM backend
    // does exactly that — bank/row state makes the closed form
    // unprofitable, and the contract stays trivially satisfied.

    /// May a conservative window open at the current instant? `true`
    /// only when the backend is in a pure in-service state: no queued
    /// or blocked requests, no completed-unconsumed loads, no pending
    /// comparator re-check, and no service-order randomization — i.e.
    /// every future tick up to the next retirement is closed-form
    /// predictable. The default (`false`) opts the backend out of
    /// windows entirely.
    fn window_ready(&self) -> bool {
        false
    }

    /// Snapshot `core`'s body ports for the window planner, or `None`
    /// if either body port holds a transaction that is not in service.
    /// Only called after [`MemBackend::window_ready`] returned `true`;
    /// the default panics to keep opted-out backends honest.
    fn body_ports_view(&self, core: usize) -> Option<BodyPortsView> {
        let _ = core;
        unreachable!("body_ports_view on a backend without window support")
    }

    /// Earliest retirement cycle over *all* of `core`'s in-flight
    /// transactions (any port), or `None` if the core has nothing in
    /// flight. Blocked header stores contribute nothing — they retire
    /// with (and are bounded by) the store that blocks them. Only
    /// called after [`MemBackend::window_ready`] returned `true`.
    fn earliest_retire(&self, core: usize) -> Option<u64> {
        let _ = core;
        unreachable!("earliest_retire on a backend without window support")
    }

    /// Commit a planned window ending at `end_cycle`: advance the
    /// clock, replicate the per-tick statistics the skipped ticks
    /// would have accumulated (`busy_ticks` ticks with a non-empty
    /// queue, `occupancy_sum` total queue occupancy, per-patch issue
    /// counts), and replace each patched core's body-port transactions
    /// and burst trackers with their end-of-window state. Every
    /// replacement transaction must still be in service
    /// (`done_at > end_cycle`) — the planner's gap rule guarantees no
    /// retirement lands inside the window. Only called after
    /// [`MemBackend::window_ready`] returned `true`.
    fn apply_body_window(
        &mut self,
        end_cycle: u64,
        busy_ticks: u64,
        occupancy_sum: u64,
        patches: &[BodyWindowPatch],
    ) {
        let _ = (end_cycle, busy_ticks, occupancy_sum, patches);
        unreachable!("apply_body_window on a backend without window support")
    }
}

/// The fixed latency/bandwidth model *is* the reference backend: pure
/// delegation, so trait-routed runs are bit-exact with direct calls.
impl MemBackend for MemorySystem {
    fn new_backend(n_cores: usize, cfg: MemConfig) -> MemorySystem {
        MemorySystem::new(n_cores, cfg)
    }

    #[inline]
    fn tick(&mut self) {
        MemorySystem::tick(self)
    }

    #[inline]
    fn try_issue(&mut self, core: usize, port: Port, addr: u32) -> bool {
        MemorySystem::try_issue(self, core, port, addr)
    }

    #[inline]
    fn port_busy(&self, core: usize, port: Port) -> bool {
        MemorySystem::port_busy(self, core, port)
    }

    #[inline]
    fn load_ready(&self, core: usize, port: Port) -> bool {
        MemorySystem::load_ready(self, core, port)
    }

    #[inline]
    fn consume_load(&mut self, core: usize, port: Port) -> u32 {
        MemorySystem::consume_load(self, core, port)
    }

    #[inline]
    fn all_idle(&self) -> bool {
        MemorySystem::all_idle(self)
    }

    #[inline]
    fn header_store_pending(&self, addr: u32) -> bool {
        MemorySystem::header_store_pending(self, addr)
    }

    #[inline]
    fn next_event_cycle(&self) -> Option<u64> {
        MemorySystem::next_event_cycle(self)
    }

    #[inline]
    fn next_activity_cycle(&self) -> Option<u64> {
        MemorySystem::next_activity_cycle(self)
    }

    #[inline]
    fn next_tick_starts_service_only(&self) -> bool {
        MemorySystem::next_tick_starts_service_only(self)
    }

    #[inline]
    fn fast_forward(&mut self, k: u64) {
        MemorySystem::fast_forward(self, k)
    }

    #[inline]
    fn set_cycle(&mut self, cycle: u64) {
        MemorySystem::set_cycle(self, cycle)
    }

    #[inline]
    fn cycle(&self) -> u64 {
        MemorySystem::cycle(self)
    }

    #[inline]
    fn config(&self) -> &MemConfig {
        MemorySystem::config(self)
    }

    #[inline]
    fn uncontended_read_latency(&self) -> u32 {
        self.config().latency
    }

    fn enable_event_log(&mut self) {
        MemorySystem::enable_event_log(self)
    }

    #[inline]
    fn event_log_enabled(&self) -> bool {
        MemorySystem::event_log_enabled(self)
    }

    fn take_event_log(&mut self) -> Vec<MemEventRecord> {
        MemorySystem::take_event_log(self)
    }

    fn enable_wake_feed(&mut self, n_cores: usize) {
        MemorySystem::enable_wake_feed(self, n_cores)
    }

    #[inline]
    fn wakes(&self) -> &[usize] {
        MemorySystem::wakes(self)
    }

    #[inline]
    fn clear_wakes(&mut self) {
        MemorySystem::clear_wakes(self)
    }

    #[inline]
    fn stats(&self) -> &MemStats {
        MemorySystem::stats(self)
    }

    fn into_stats(self) -> MemStats {
        MemorySystem::into_stats(self)
    }

    #[inline]
    fn queue_len(&self) -> usize {
        MemorySystem::queue_len(self)
    }

    fn oldest_inflight_age(&self) -> Option<u64> {
        MemorySystem::oldest_inflight_age(self)
    }

    #[inline]
    fn window_ready(&self) -> bool {
        MemorySystem::window_ready(self)
    }

    #[inline]
    fn body_ports_view(&self, core: usize) -> Option<BodyPortsView> {
        MemorySystem::body_ports_view(self, core)
    }

    #[inline]
    fn earliest_retire(&self, core: usize) -> Option<u64> {
        MemorySystem::earliest_retire(self, core)
    }

    fn apply_body_window(
        &mut self,
        end_cycle: u64,
        busy_ticks: u64,
        occupancy_sum: u64,
        patches: &[BodyWindowPatch],
    ) {
        MemorySystem::apply_body_window(self, end_cycle, busy_ticks, occupancy_sum, patches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::PagePolicy;

    /// Every input class the parser distinguishes, in one place — the
    /// documentation test for the `HWGC_MEM_BACKEND` grammar (the
    /// `sparse_from`/`jobs_from` convention).
    #[test]
    fn backend_from_documents_every_input_class() {
        // Unset, empty, and explicit `fixed` are the fixed backend.
        assert_eq!(backend_from(None), MemBackendKind::Fixed);
        assert_eq!(backend_from(Some("")), MemBackendKind::Fixed);
        assert_eq!(backend_from(Some("  ")), MemBackendKind::Fixed);
        assert_eq!(backend_from(Some("fixed")), MemBackendKind::Fixed);
        assert_eq!(backend_from(Some(" Fixed ")), MemBackendKind::Fixed);

        // Bare `dram` takes the default timing preset.
        assert_eq!(
            backend_from(Some("dram")),
            MemBackendKind::Dram(DramConfig::default())
        );
        assert_eq!(
            backend_from(Some(" DRAM ")),
            MemBackendKind::Dram(DramConfig::default())
        );

        // Named presets.
        for name in ["150ns", "120ns", "100ns", "80ns"] {
            let spelled = format!("dram:{name}");
            assert_eq!(
                backend_from(Some(&spelled)),
                MemBackendKind::Dram(DramConfig::preset(name).unwrap()),
                "{spelled}"
            );
        }

        // Page-policy suffix, with or without a preset.
        let closed = backend_from(Some("dram:closed"));
        assert_eq!(
            closed,
            MemBackendKind::Dram(DramConfig {
                page_policy: PagePolicy::Closed,
                ..DramConfig::default()
            })
        );
        assert_eq!(
            backend_from(Some("dram:80ns:closed")),
            MemBackendKind::Dram(DramConfig {
                page_policy: PagePolicy::Closed,
                ..DramConfig::preset("80ns").unwrap()
            })
        );
        assert_eq!(
            backend_from(Some("dram:open")),
            MemBackendKind::Dram(DramConfig::default())
        );

        // Anything unrecognized falls back to the fixed backend.
        assert_eq!(backend_from(Some("sram")), MemBackendKind::Fixed);
        assert_eq!(backend_from(Some("dram:200ns")), MemBackendKind::Fixed);
        assert_eq!(
            backend_from(Some("dram:100ns:bogus")),
            MemBackendKind::Fixed
        );
        assert_eq!(backend_from(Some("1")), MemBackendKind::Fixed);
    }

    #[test]
    fn fixed_backend_uncontended_read_latency_is_exactly_cfg_latency() {
        // The root phase charges `latency + 1` per root header read and
        // excludes `extra_latency`; the trait must preserve that so the
        // refactor is bit-exact (the BENCH_simulator.json pin).
        let cfg = MemConfig {
            latency: 7,
            ..MemConfig::default()
        }
        .with_extra_latency(20);
        let m = MemorySystem::new(1, cfg);
        assert_eq!(MemBackend::uncontended_read_latency(&m), 7);
    }
}
