//! Split-transaction memory system of the GC coprocessor (paper Section
//! V-D).
//!
//! Each core owns four single-entry buffers — header-load, header-store,
//! body-load and body-store — so up to `4 × N` requests can be pending at
//! once. A core stalls only when it re-uses a busy buffer or consumes a
//! load whose data has not arrived. The DRAM model accepts a configurable
//! number of requests per cycle (bandwidth) and completes each a
//! configurable number of cycles after service start (latency).
//!
//! Ordering is enforced *only where the algorithm requires it*:
//!
//! * body accesses are completely unordered (every body word is written or
//!   read exactly once per collection cycle),
//! * a header **load** is delayed while a header **store** to the same
//!   address is pending (the comparator array),
//! * write/write ordering on headers needs no hardware because the locking
//!   protocol guarantees a single writer per header.
//!
//! The model is *timing-only*: data movement is performed by the collector
//! cores directly on the heap at architecturally-correct points (stores
//! apply when issued; loads are sampled when consumed). The lock protocol
//! and the comparator array together make this equivalent to the hardware's
//! value flow.
//!
//! The module also provides the on-chip [`HeaderFifo`] that buffers gray
//! tospace headers: they are read at `scan` in exactly the order they were
//! written at `free`, so as long as the gray population fits the FIFO, the
//! scan-side header read needs no memory access at all.

pub mod backend;
pub mod dram;
pub mod fifo;
pub mod system;

pub use backend::{
    backend_from, BodyPortsView, BodyWindowPatch, FinalTxn, InflightTxnView, MemBackend,
    MemBackendKind,
};
pub use dram::{DramConfig, DramMemorySystem, DramStats, PagePolicy};
pub use fifo::{FifoStats, HeaderFifo};
pub use system::{
    MemConfig, MemEvent, MemEventRecord, MemStats, MemorySystem, Port, RowOutcome, PORT_COUNT,
};
