//! The on-chip header FIFO (paper Section V-D, last paragraph).
//!
//! `scan` can only be advanced once the size of the object at `scan` is
//! known, i.e. after its tospace header has been read — inside the
//! scan-lock critical section, so these reads are a potential bottleneck.
//! But gray tospace headers are *read in exactly the same order as they are
//! written* (both `scan` and `free` advance monotonically), so the
//! coprocessor buffers them in a FIFO: as long as the gray population fits,
//! the scan-side header read is a same-cycle FIFO pop and no memory access
//! is needed — neither the store at evacuation time nor the load at scan
//! time.
//!
//! On overflow (FIFO full at push time) the evacuating core must write the
//! gray header to memory, and the scanning core will miss the FIFO (head
//! address ≠ `scan`) and read the header from memory *while holding the
//! scan lock*, lengthening the critical section. That is the paper's `cup`
//! pathology (Tab. II: 10.49 % scan-lock stalls).

use std::collections::VecDeque;

/// Statistics of FIFO effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Successful pushes (gray header buffered on chip).
    pub pushes: u64,
    /// Pushes rejected because the FIFO was full.
    pub overflows: u64,
    /// Pops that satisfied a scan-side header read.
    pub hits: u64,
    /// Scan-side reads that missed (head mismatch or empty).
    pub misses: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

/// On-chip FIFO of gray tospace headers: `(frame address, header word 0,
/// header word 1)`.
#[derive(Debug, Clone)]
pub struct HeaderFifo {
    capacity: usize,
    q: VecDeque<(u32, u32, u32)>,
    stats: FifoStats,
}

impl HeaderFifo {
    /// FIFO with room for `capacity` headers. Capacity 0 disables the
    /// optimization entirely (every gray header goes through memory).
    pub fn new(capacity: usize) -> HeaderFifo {
        HeaderFifo {
            capacity,
            q: VecDeque::with_capacity(capacity.min(65536)),
            stats: FifoStats::default(),
        }
    }

    /// Buffer a freshly written gray header. Returns `false` on overflow:
    /// the caller must fall back to a memory header store.
    pub fn push(&mut self, addr: u32, w0: u32, w1: u32) -> bool {
        if self.q.len() >= self.capacity {
            self.stats.overflows += 1;
            return false;
        }
        self.q.push_back((addr, w0, w1));
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.q.len());
        self.stats.pushes += 1;
        true
    }

    /// Scan-side read: if the head entry is the frame at `scan_addr`, pop
    /// and return its header words (same-cycle, no memory access).
    /// Otherwise the header was pushed around an overflow and must be read
    /// from memory.
    pub fn try_pop(&mut self, scan_addr: u32) -> Option<(u32, u32)> {
        match self.q.front() {
            Some(&(addr, w0, w1)) if addr == scan_addr => {
                self.q.pop_front();
                self.stats.hits += 1;
                Some((w0, w1))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Zero-cost peek at the head entry when it is the frame at
    /// `scan_addr` (hardware: the FIFO head is a register). Non-final
    /// chunk claims of the line-split extension re-read the header this
    /// way without consuming the entry. No statistics are recorded; a
    /// matching [`HeaderFifo::try_pop`] accounts the hit and
    /// [`HeaderFifo::count_miss`] accounts a scan-side read that had to go
    /// to memory.
    pub fn peek(&self, scan_addr: u32) -> Option<(u32, u32)> {
        match self.q.front() {
            Some(&(addr, w0, w1)) if addr == scan_addr => Some((w0, w1)),
            _ => None,
        }
    }

    /// Record a scan-side header read that missed the FIFO (the header
    /// was pushed around an overflow, or the frame is a mid-cycle
    /// allocation) and therefore went to memory.
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Is the FIFO empty?
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_matches_push_order() {
        let mut f = HeaderFifo::new(4);
        assert!(f.push(10, 1, 2));
        assert!(f.push(20, 3, 4));
        assert_eq!(f.try_pop(10), Some((1, 2)));
        assert_eq!(f.try_pop(20), Some((3, 4)));
        assert!(f.is_empty());
        assert_eq!(f.stats().hits, 2);
    }

    #[test]
    fn head_mismatch_is_a_miss_and_preserves_entry() {
        let mut f = HeaderFifo::new(4);
        f.push(10, 1, 2);
        assert_eq!(f.try_pop(99), None);
        assert_eq!(f.len(), 1);
        assert_eq!(f.try_pop(10), Some((1, 2)));
        assert_eq!(f.stats().misses, 1);
    }

    #[test]
    fn overflow_rejects_push() {
        let mut f = HeaderFifo::new(2);
        assert!(f.push(1, 0, 0));
        assert!(f.push(2, 0, 0));
        assert!(!f.push(3, 0, 0));
        assert_eq!(f.stats().overflows, 1);
        assert_eq!(f.stats().max_occupancy, 2);
        // Skipped entry (3) never enters; after popping 1 and 2, a read for
        // 3 misses — forcing the memory fallback, as in hardware.
        assert_eq!(f.try_pop(1), Some((0, 0)));
        assert_eq!(f.try_pop(2), Some((0, 0)));
        assert_eq!(f.try_pop(3), None);
    }

    #[test]
    fn zero_capacity_disables_fifo() {
        let mut f = HeaderFifo::new(0);
        assert!(!f.push(1, 0, 0));
        assert_eq!(f.try_pop(1), None);
    }

    #[test]
    fn pop_on_empty_is_miss() {
        let mut f = HeaderFifo::new(2);
        assert_eq!(f.try_pop(5), None);
        assert_eq!(f.stats().misses, 1);
    }
}
