//! The bank/row DRAM timing backend.
//!
//! [`DramMemorySystem`] keeps the fixed model's request protocol — the
//! same per-core single-entry port buffers, the same comparator array
//! ordering header loads behind matching header stores, the same
//! optional header cache and retirement calendar — but replaces the flat
//! `latency` with a row-buffer model over `n_banks` independent banks:
//!
//! * **row hit** — the addressed row is open: `tCAS`;
//! * **row empty** — the bank is precharged: `tRCD + tCAS`;
//! * **row conflict** — another row is open: wait out the remainder of
//!   `tRAS` since that row's activate, then `tRP + tRCD + tCAS`.
//!
//! Addresses map row-interleaved: `row = addr / row_words`,
//! `bank = row % n_banks`, so Cheney's sequentially allocated tospace
//! streams stay inside one open row for `row_words` words — the effect
//! the paper's flat-latency prototype could not measure — while random
//! header traffic scatters across banks.
//!
//! Each bank serves one access at a time (`ready_at`) from its own FIFO
//! queue; a global `bandwidth` cap bounds service starts per cycle, and
//! banks are scanned in index order, so service is deterministic. Under
//! [`PagePolicy::Closed`] every access auto-precharges (`ready_at`
//! extends by `tRP`, the next access is always a row empty).
//!
//! The Figure 6 `extra_latency` knob still applies to every access.
//! `tCAS >= 1` is asserted, so no access retires within its service
//! start tick — the calendar contracts below need no zero-latency path.
//!
//! # Calendar/fast-forward contracts (see [`crate::MemBackend`])
//!
//! * `next_activity_cycle` returns `Some(cycle + 1)` whenever any bank
//!   queue is non-empty or a comparator re-check is pending — a
//!   conservative lower bound (a bank may still be busy next tick); the
//!   sparse engine then single-steps through bank-busy windows, which
//!   terminates because every queue drains at the in-service
//!   retirements the calendar tracks. With all queues empty it is the
//!   retirement horizon, exactly as in the fixed model.
//! * `next_event_cycle` requires global quiescence (no queued request,
//!   no unconsumed load, no pending re-check) — then ticks up to the
//!   horizon are pure waits: banks only change state at service starts
//!   and the absolute `ready_at`/`active_since` stamps do not drift.
//! * `next_tick_starts_service_only` holds whenever requests are queued
//!   but nothing retires next tick and no load data waits: every
//!   possible service start has latency `>= tCAS >= 1`, and a tick in
//!   which busy banks start nothing at all is equally core-invisible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::backend::{MemBackend, MemBackendKind};
use crate::system::{
    remove_one, MemConfig, MemEvent, MemEventRecord, MemStats, Port, RowOutcome, Txn, TxnState,
    PORT_COUNT,
};

/// Row-buffer page policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Leave the accessed row open (row hits possible; conflicts pay
    /// precharge + activate).
    Open,
    /// Auto-precharge after every access: no hits, no conflicts, every
    /// access is a row empty, and the bank re-arms `tRP` after data.
    Closed,
}

impl PagePolicy {
    /// Parse a policy token from the `HWGC_MEM_BACKEND` grammar.
    pub fn parse(text: &str) -> Option<PagePolicy> {
        match text {
            "open" => Some(PagePolicy::Open),
            "closed" => Some(PagePolicy::Closed),
            _ => None,
        }
    }
}

/// DRAM timing parameters, in core clock cycles.
///
/// The named presets scale the TMS4256-style nanosecond tiers of
/// seritools/picoram's `DramTimingConfig` (150/120/100/80 ns parts)
/// onto the paper's 25 MHz-class core clock (≈25 ns per core cycle,
/// rounded up — the prototype's DDR-SDRAM ran several times faster
/// than the cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Activate-to-column delay (row empty adds this before `t_cas`).
    pub t_rcd: u32,
    /// Column access latency — every access pays at least this.
    pub t_cas: u32,
    /// Precharge time (conflict and closed-page re-arm delay).
    pub t_rp: u32,
    /// Minimum row-active time before a precharge may begin.
    pub t_ras: u32,
    /// Independent banks (row-interleaved mapping).
    pub n_banks: u32,
    /// Words per DRAM row — the unit of row-buffer locality.
    pub row_words: u32,
    /// Open- or closed-page controller policy.
    pub page_policy: PagePolicy,
}

impl Default for DramConfig {
    /// The `100ns` preset with open-page policy: comparable in
    /// random-access cost to the fixed model's default `latency: 5`
    /// (`tRCD + tCAS = 3` on an empty bank, more under conflicts).
    fn default() -> DramConfig {
        DramConfig::preset("100ns").expect("default preset exists")
    }
}

impl DramConfig {
    /// Look up a named timing preset (`150ns`, `120ns`, `100ns`,
    /// `80ns`). All presets use 8 banks, 128-word rows, open page.
    pub fn preset(name: &str) -> Option<DramConfig> {
        let (t_ras, t_cas, t_rcd, t_rp) = match name {
            "150ns" => (6, 3, 1, 4),
            "120ns" => (5, 3, 1, 4),
            "100ns" => (4, 2, 1, 4),
            "80ns" => (4, 2, 1, 3),
            _ => return None,
        };
        Some(DramConfig {
            t_rcd,
            t_cas,
            t_rp,
            t_ras,
            n_banks: 8,
            row_words: 128,
            page_policy: PagePolicy::Open,
        })
    }
}

/// Bank/row counters, carried in [`MemStats::dram`] (always `Some` for
/// this backend, `None` for the fixed one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Accesses that found their row open.
    pub row_hits: u64,
    /// Accesses to a precharged bank (includes every closed-page
    /// access).
    pub row_empties: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Service starts per bank.
    pub bank_accesses: Vec<u64>,
    /// Cycles each bank spent busy (access in flight or precharging).
    pub bank_busy_cycles: Vec<u64>,
}

impl DramStats {
    /// Total service starts.
    pub fn total_accesses(&self) -> u64 {
        self.row_hits + self.row_empties + self.row_conflicts
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Per-bank row-buffer and availability state. Timestamps are absolute
/// cycles, so clock jumps (`fast_forward`, `set_cycle`) need no fixup.
#[derive(Debug, Clone, Copy)]
struct Bank {
    /// Currently open row, if any.
    open_row: Option<u32>,
    /// First cycle at which this bank may start another access.
    ready_at: u64,
    /// Cycle the open row's activate was issued (for the `tRAS` floor).
    active_since: u64,
}

/// The bank/row DRAM backend (see the module docs).
#[derive(Debug, Clone)]
pub struct DramMemorySystem {
    cfg: MemConfig,
    dram: DramConfig,
    cycle: u64,
    /// `ports[core][port]` — identical protocol to the fixed model.
    ports: Vec<[Option<Txn>; PORT_COUNT]>,
    /// Per-bank service queues, FIFO within a bank.
    bank_queues: Vec<VecDeque<(usize, Port, u32)>>,
    /// Total requests across all bank queues.
    queued_total: usize,
    pending_header_stores: Vec<u32>,
    header_cache: Vec<Option<u32>>,
    banks: Vec<Bank>,
    stats: MemStats,
    occupied: usize,
    in_service: usize,
    blocked: usize,
    complete: usize,
    next_retire: u64,
    retire_cal: BinaryHeap<Reverse<(u64, u32, u8)>>,
    pending_stores_dirty: bool,
    wake_feed: Option<Vec<usize>>,
    events: Option<Vec<MemEventRecord>>,
}

impl DramMemorySystem {
    /// DRAM backend serving `n_cores` cores. Timing comes from
    /// `cfg.backend` when it is [`MemBackendKind::Dram`], otherwise
    /// from [`DramConfig::default`].
    pub fn new(n_cores: usize, cfg: MemConfig) -> DramMemorySystem {
        let dram = match cfg.backend {
            MemBackendKind::Dram(d) => d,
            MemBackendKind::Fixed => DramConfig::default(),
        };
        assert!(cfg.bandwidth > 0, "bandwidth must be positive");
        assert!(dram.t_cas >= 1, "tCAS must be at least one cycle");
        assert!(dram.n_banks >= 1, "need at least one bank");
        assert!(dram.row_words >= 1, "rows must hold at least one word");
        let n_banks = dram.n_banks as usize;
        // Built in a loop, not `vec![..; n]`: cloning a `VecDeque` does
        // not preserve capacity, and the steady-state loop must never
        // grow these (the engine's no-alloc test counts).
        let queue_cap = n_cores * PORT_COUNT + PORT_COUNT;
        let mut bank_queues = Vec::with_capacity(n_banks);
        bank_queues.resize_with(n_banks, || VecDeque::with_capacity(queue_cap));
        DramMemorySystem {
            cfg,
            dram,
            cycle: 0,
            ports: vec![[None; PORT_COUNT]; n_cores],
            bank_queues,
            queued_total: 0,
            pending_header_stores: Vec::with_capacity(n_cores + 1),
            header_cache: vec![None; cfg.header_cache_entries],
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                    active_since: 0,
                };
                n_banks
            ],
            stats: MemStats {
                dram: Some(DramStats {
                    bank_accesses: vec![0; n_banks],
                    bank_busy_cycles: vec![0; n_banks],
                    ..DramStats::default()
                }),
                ..MemStats::default()
            },
            occupied: 0,
            in_service: 0,
            blocked: 0,
            complete: 0,
            next_retire: u64::MAX,
            retire_cal: BinaryHeap::with_capacity(n_cores * PORT_COUNT + PORT_COUNT),
            pending_stores_dirty: false,
            wake_feed: None,
            events: None,
        }
    }

    /// The DRAM timing parameters in effect.
    pub fn dram_config(&self) -> &DramConfig {
        &self.dram
    }

    #[inline]
    fn bank_of(&self, addr: u32) -> usize {
        ((addr / self.dram.row_words) % self.dram.n_banks) as usize
    }

    #[inline]
    fn push_wake(&mut self, core: usize) {
        if let Some(feed) = &mut self.wake_feed {
            feed.push(core);
        }
    }

    #[inline]
    fn log(&mut self, event: MemEvent) {
        if let Some(events) = &mut self.events {
            events.push(MemEventRecord {
                cycle: self.cycle,
                event,
            });
        }
    }

    fn cache_lookup(&mut self, addr: u32) -> bool {
        if self.header_cache.is_empty() {
            return false;
        }
        let set = addr as usize % self.header_cache.len();
        if self.header_cache[set] == Some(addr) {
            self.stats.header_cache_hits += 1;
            true
        } else {
            self.stats.header_cache_misses += 1;
            false
        }
    }

    fn cache_fill(&mut self, addr: u32) {
        if self.header_cache.is_empty() {
            return;
        }
        let set = addr as usize % self.header_cache.len();
        self.header_cache[set] = Some(addr);
    }

    /// Resolve one access against bank `b`'s row buffer at the current
    /// cycle: returns the service latency (before `extra_latency`) and
    /// the row outcome, and commits the bank's new row/timing state for
    /// an access completing at `now + latency (+ extra)`.
    fn access_bank(&mut self, b: usize, addr: u32) -> (u32, RowOutcome) {
        let row = addr / self.dram.row_words;
        let now = self.cycle;
        let bank = &mut self.banks[b];
        match self.dram.page_policy {
            PagePolicy::Closed => (self.dram.t_rcd + self.dram.t_cas, RowOutcome::Empty),
            PagePolicy::Open => match bank.open_row {
                Some(open) if open == row => (self.dram.t_cas, RowOutcome::Hit),
                Some(_) => {
                    // Precharge may only begin once the open row has
                    // been active for `tRAS`; pay the remainder first.
                    let ras_rest =
                        (bank.active_since + self.dram.t_ras as u64).saturating_sub(now) as u32;
                    let latency = ras_rest + self.dram.t_rp + self.dram.t_rcd + self.dram.t_cas;
                    bank.open_row = Some(row);
                    bank.active_since = now + (ras_rest + self.dram.t_rp) as u64;
                    (latency, RowOutcome::Conflict)
                }
                None => {
                    bank.open_row = Some(row);
                    bank.active_since = now;
                    (self.dram.t_rcd + self.dram.t_cas, RowOutcome::Empty)
                }
            },
        }
    }

    /// Advance one cycle: retire due transactions, re-check the
    /// comparator array, then let ready banks start service under the
    /// global bandwidth cap. Structure mirrors
    /// [`crate::MemorySystem::tick`]; only step 3 differs.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;

        // 1. Retire in-service transactions that are due.
        if self.in_service > 0 && self.next_retire <= self.cycle {
            while let Some(&Reverse((done_at, core, port_idx))) = self.retire_cal.peek() {
                if done_at > self.cycle {
                    break;
                }
                self.retire_cal.pop();
                let core = core as usize;
                let port = Port::ALL[port_idx as usize];
                let txn = self.ports[core][port_idx as usize]
                    .as_mut()
                    .expect("calendar entry without a transaction");
                debug_assert_eq!(txn.state, TxnState::InService { done_at });
                self.in_service -= 1;
                if port.is_load() {
                    txn.state = TxnState::Complete;
                    self.complete += 1;
                } else {
                    if port == Port::HeaderStore {
                        let addr = txn.addr;
                        remove_one(&mut self.pending_header_stores, addr);
                        self.pending_stores_dirty = true;
                    }
                    self.ports[core][port_idx as usize] = None;
                    self.occupied -= 1;
                }
                self.log(MemEvent::Retire {
                    core: core as u32,
                    port,
                });
                self.push_wake(core);
            }
            self.next_retire = match self.retire_cal.peek() {
                Some(&Reverse((done_at, _, _))) => done_at,
                None => u64::MAX,
            };
        }

        // 2. Comparator re-check (identical to the fixed model).
        if self.blocked > 0 {
            if self.pending_stores_dirty {
                for core in 0..self.ports.len() {
                    if let Some(txn) = &mut self.ports[core][Port::HeaderLoad as usize] {
                        if txn.state == TxnState::Blocked {
                            if self.pending_header_stores.contains(&txn.addr) {
                                self.stats.comparator_blocked_cycles += 1;
                            } else {
                                txn.state = TxnState::Queued;
                                let addr = txn.addr;
                                self.blocked -= 1;
                                let bank = self.bank_of(addr);
                                self.bank_queues[bank].push_back((core, Port::HeaderLoad, addr));
                                self.queued_total += 1;
                                self.log(MemEvent::CompUnblocked {
                                    core: core as u32,
                                    addr,
                                });
                            }
                        }
                    }
                }
            } else {
                self.stats.comparator_blocked_cycles += self.blocked as u64;
            }
        }
        self.pending_stores_dirty = false;

        // 3. Ready banks start service, bank index order, up to
        // `bandwidth` starts per cycle, one in-flight access per bank.
        if self.queued_total > 0 {
            self.stats.queue_occupancy_sum += self.queued_total as u64;
            self.stats.queue_busy_cycles += 1;
            let mut budget = self.cfg.bandwidth;
            for b in 0..self.banks.len() {
                if budget == 0 {
                    break;
                }
                if self.bank_queues[b].is_empty() || self.banks[b].ready_at > self.cycle {
                    continue;
                }
                let (core, port, addr) = self.bank_queues[b].pop_front().expect("checked");
                self.queued_total -= 1;
                budget -= 1;
                let left_behind = self.bank_queues[b].len() as u32;
                let (row_latency, outcome) = self.access_bank(b, addr);
                let latency = row_latency + self.cfg.extra_latency;
                debug_assert!(latency >= 1, "tCAS >= 1 forbids zero-latency service");
                let done_at = self.cycle + latency as u64;
                self.banks[b].ready_at = match self.dram.page_policy {
                    PagePolicy::Open => done_at,
                    PagePolicy::Closed => done_at + self.dram.t_rp as u64,
                };
                let busy = self.banks[b].ready_at - self.cycle;
                let dstats = self.stats.dram.as_mut().expect("dram stats present");
                match outcome {
                    RowOutcome::Hit => dstats.row_hits += 1,
                    RowOutcome::Empty => dstats.row_empties += 1,
                    RowOutcome::Conflict => dstats.row_conflicts += 1,
                }
                dstats.bank_accesses[b] += 1;
                dstats.bank_busy_cycles[b] += busy;
                self.log(MemEvent::DramAccess {
                    core: core as u32,
                    port,
                    bank: b as u32,
                    outcome,
                    bank_queue: left_behind,
                });
                self.log(MemEvent::ServiceStart {
                    core: core as u32,
                    port,
                    latency,
                });
                let txn = self.ports[core][port as usize]
                    .as_mut()
                    .expect("queued transaction must exist");
                debug_assert_eq!(txn.state, TxnState::Queued);
                txn.state = TxnState::InService { done_at };
                self.in_service += 1;
                self.retire_cal
                    .push(Reverse((done_at, core as u32, port as u8)));
                self.next_retire = self.next_retire.min(done_at);
            }
        }
    }

    /// Issue a request on `(core, port)` — the protocol (port buffers,
    /// comparator array, header cache) is identical to
    /// [`crate::MemorySystem::try_issue`]; only the queue the request
    /// joins is per-bank.
    pub fn try_issue(&mut self, core: usize, port: Port, addr: u32) -> bool {
        if self.ports[core][port as usize].is_some() {
            return false;
        }
        let mut state = TxnState::Queued;
        if port == Port::HeaderLoad && self.pending_header_stores.contains(&addr) {
            state = TxnState::Blocked;
        } else if port == Port::HeaderLoad && self.cache_lookup(addr) {
            state = TxnState::Complete;
        }
        if port == Port::HeaderLoad && state == TxnState::Queued {
            self.cache_fill(addr);
        }
        if port == Port::HeaderStore {
            self.pending_header_stores.push(addr);
            self.cache_fill(addr);
        }
        self.ports[core][port as usize] = Some(Txn {
            addr,
            state,
            issued_at: self.cycle,
        });
        self.occupied += 1;
        self.log(MemEvent::Issue {
            core: core as u32,
            port,
            addr,
        });
        match state {
            TxnState::Queued => {
                let bank = self.bank_of(addr);
                self.bank_queues[bank].push_back((core, port, addr));
                self.queued_total += 1;
            }
            TxnState::Blocked => {
                self.blocked += 1;
                self.log(MemEvent::CompBlocked {
                    core: core as u32,
                    addr,
                });
            }
            TxnState::Complete => {
                self.complete += 1;
                self.log(MemEvent::CacheHit {
                    core: core as u32,
                    addr,
                });
            }
            TxnState::InService { .. } => unreachable!("issue never starts service"),
        }
        self.stats.issued[port as usize] += 1;
        true
    }
}

impl MemBackend for DramMemorySystem {
    fn new_backend(n_cores: usize, cfg: MemConfig) -> DramMemorySystem {
        DramMemorySystem::new(n_cores, cfg)
    }

    #[inline]
    fn tick(&mut self) {
        DramMemorySystem::tick(self)
    }

    #[inline]
    fn try_issue(&mut self, core: usize, port: Port, addr: u32) -> bool {
        DramMemorySystem::try_issue(self, core, port, addr)
    }

    #[inline]
    fn port_busy(&self, core: usize, port: Port) -> bool {
        self.ports[core][port as usize].is_some()
    }

    #[inline]
    fn load_ready(&self, core: usize, port: Port) -> bool {
        assert!(port.is_load());
        matches!(
            self.ports[core][port as usize],
            Some(Txn {
                state: TxnState::Complete,
                ..
            })
        )
    }

    fn consume_load(&mut self, core: usize, port: Port) -> u32 {
        assert!(port.is_load());
        let txn = self.ports[core][port as usize]
            .take()
            .expect("no load in buffer");
        assert_eq!(
            txn.state,
            TxnState::Complete,
            "load consumed before completion"
        );
        self.occupied -= 1;
        self.complete -= 1;
        self.log(MemEvent::Consume {
            core: core as u32,
            port,
        });
        txn.addr
    }

    #[inline]
    fn all_idle(&self) -> bool {
        self.occupied == 0
    }

    #[inline]
    fn header_store_pending(&self, addr: u32) -> bool {
        self.pending_header_stores.contains(&addr)
    }

    fn next_event_cycle(&self) -> Option<u64> {
        if self.queued_total > 0
            || self.complete > 0
            || self.pending_stores_dirty
            || self.in_service == 0
        {
            return None;
        }
        Some(self.next_retire)
    }

    fn next_activity_cycle(&self) -> Option<u64> {
        if self.queued_total > 0 || self.pending_stores_dirty {
            return Some(self.cycle + 1);
        }
        if self.in_service == 0 {
            return None;
        }
        Some(self.next_retire)
    }

    fn next_tick_starts_service_only(&self) -> bool {
        // Every possible service start has latency >= tCAS >= 1 (no
        // burst-continuation path), and ticks in which busy banks start
        // nothing are equally core-invisible — so unlike the fixed
        // model, no per-request latency peek is needed.
        self.queued_total > 0 && self.complete == 0 && self.next_retire > self.cycle + 1
    }

    fn fast_forward(&mut self, k: u64) {
        debug_assert!(self.queued_total == 0, "fast-forward with queued requests");
        self.cycle += k;
        self.stats.cycles += k;
        self.stats.comparator_blocked_cycles += k * self.blocked as u64;
    }

    fn set_cycle(&mut self, cycle: u64) {
        assert!(cycle >= self.cycle, "memory clock may not go backwards");
        assert!(
            self.occupied == 0 && self.queued_total == 0,
            "set_cycle with traffic in flight"
        );
        self.cycle = cycle;
    }

    #[inline]
    fn cycle(&self) -> u64 {
        self.cycle
    }

    #[inline]
    fn config(&self) -> &MemConfig {
        &self.cfg
    }

    #[inline]
    fn uncontended_read_latency(&self) -> u32 {
        // A root header fetch lands on a precharged bank: activate +
        // column access (`extra_latency` excluded, as in the fixed
        // backend).
        self.dram.t_rcd + self.dram.t_cas
    }

    fn enable_event_log(&mut self) {
        self.events = Some(Vec::new());
    }

    #[inline]
    fn event_log_enabled(&self) -> bool {
        self.events.is_some()
    }

    fn take_event_log(&mut self) -> Vec<MemEventRecord> {
        self.events.take().unwrap_or_default()
    }

    fn enable_wake_feed(&mut self, n_cores: usize) {
        self.wake_feed = Some(Vec::with_capacity(n_cores * PORT_COUNT));
    }

    #[inline]
    fn wakes(&self) -> &[usize] {
        self.wake_feed.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn clear_wakes(&mut self) {
        if let Some(feed) = &mut self.wake_feed {
            feed.clear();
        }
    }

    #[inline]
    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn into_stats(self) -> MemStats {
        self.stats
    }

    #[inline]
    fn queue_len(&self) -> usize {
        self.queued_total
    }

    fn oldest_inflight_age(&self) -> Option<u64> {
        self.ports
            .iter()
            .flatten()
            .flatten()
            .map(|t| self.cycle.saturating_sub(t.issued_at))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram_cfg() -> DramConfig {
        DramConfig {
            t_rcd: 2,
            t_cas: 2,
            t_rp: 3,
            t_ras: 6,
            n_banks: 4,
            row_words: 16,
            page_policy: PagePolicy::Open,
        }
    }

    fn mem(n: usize) -> DramMemorySystem {
        DramMemorySystem::new(
            n,
            MemConfig {
                bandwidth: 2,
                backend: MemBackendKind::Dram(dram_cfg()),
                ..MemConfig::default()
            },
        )
    }

    fn dstats(m: &DramMemorySystem) -> &DramStats {
        m.stats.dram.as_ref().unwrap()
    }

    #[test]
    fn row_empty_then_hit_then_conflict() {
        let mut m = mem(1);
        // Cold bank: empty access, tRCD + tCAS = 4.
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        m.tick(); // service starts at cycle 1, done at 5
        for _ in 0..3 {
            m.tick();
            assert!(!m.load_ready(0, Port::BodyLoad));
        }
        m.tick(); // cycle 5
        assert!(m.load_ready(0, Port::BodyLoad));
        assert_eq!(m.consume_load(0, Port::BodyLoad), 0);
        assert_eq!(dstats(&m).row_empties, 1);

        // Same row: hit, tCAS = 2.
        assert!(m.try_issue(0, Port::BodyLoad, 1));
        m.tick(); // start at 6, done at 8
        m.tick();
        m.tick();
        assert!(m.load_ready(0, Port::BodyLoad));
        m.consume_load(0, Port::BodyLoad);
        assert_eq!(dstats(&m).row_hits, 1);

        // Different row, same bank (row 4 = addr 64 maps to bank 0):
        // conflict.
        assert!(m.try_issue(0, Port::BodyLoad, 64));
        let before = m.cycle();
        while !m.load_ready(0, Port::BodyLoad) {
            m.tick();
            assert!(m.cycle() < before + 32);
        }
        m.consume_load(0, Port::BodyLoad);
        assert_eq!(dstats(&m).row_conflicts, 1);
        // Conflict paid at least tRP + tRCD + tCAS beyond the start.
        assert!(m.cycle() - before >= (3 + 2 + 2) as u64);
    }

    #[test]
    fn conflict_waits_out_t_ras() {
        let mut m = mem(1);
        // Activate row 0 at its service start.
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        m.tick(); // activate at cycle 1, done at 5 (tRAS runs to 7)
        for _ in 0..4 {
            m.tick();
        }
        m.consume_load(0, Port::BodyLoad);
        // Conflict right away: precharge can only start at
        // active_since + tRAS = 1 + 6 = 7.
        assert!(m.try_issue(0, Port::BodyLoad, 64));
        m.tick(); // start at cycle 6: ras_rest = 1
                  // latency = 1 + 3 + 2 + 2 = 8 → done at 14.
        while !m.load_ready(0, Port::BodyLoad) {
            m.tick();
        }
        assert_eq!(m.cycle(), 14);
    }

    #[test]
    fn closed_page_never_hits_and_rearms_with_t_rp() {
        let mut m = DramMemorySystem::new(
            1,
            MemConfig {
                bandwidth: 2,
                backend: MemBackendKind::Dram(DramConfig {
                    page_policy: PagePolicy::Closed,
                    ..dram_cfg()
                }),
                ..MemConfig::default()
            },
        );
        for round in 0..2 {
            assert!(m.try_issue(0, Port::BodyLoad, round));
            while !m.load_ready(0, Port::BodyLoad) {
                m.tick();
            }
            m.consume_load(0, Port::BodyLoad);
        }
        assert_eq!(dstats(&m).row_hits, 0);
        assert_eq!(dstats(&m).row_empties, 2);
        // Second access could not start while the bank precharged: its
        // done time shows the tRP gap. First: start 1, done 5, bank
        // ready 8. Second issued at 5, bank busy until 8 → starts at 8,
        // done at 12.
        assert_eq!(m.cycle(), 12);
    }

    #[test]
    fn banks_serve_in_parallel_under_bandwidth() {
        // Two accesses to different banks both start on the first tick
        // (bandwidth 2), so they retire together.
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::BodyLoad, 0)); // bank 0
        assert!(m.try_issue(1, Port::BodyLoad, 16)); // bank 1
        for _ in 0..5 {
            m.tick();
        }
        assert!(m.load_ready(0, Port::BodyLoad));
        assert!(m.load_ready(1, Port::BodyLoad));
    }

    #[test]
    fn one_access_in_flight_per_bank() {
        // Two accesses to the same row of the same bank: the second
        // waits for the bank even though global bandwidth allows it.
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        assert!(m.try_issue(1, Port::BodyLoad, 1));
        for _ in 0..5 {
            m.tick();
        }
        // First: start 1 (empty, 4) → done 5. Second: bank ready at 5,
        // starts at 5 (hit, 2) → done 7.
        assert!(m.load_ready(0, Port::BodyLoad));
        assert!(!m.load_ready(1, Port::BodyLoad));
        m.tick();
        m.tick();
        assert!(m.load_ready(1, Port::BodyLoad));
    }

    #[test]
    fn comparator_orders_header_load_after_store() {
        let mut m = mem(2);
        assert!(m.try_issue(0, Port::HeaderStore, 42));
        assert!(m.try_issue(1, Port::HeaderLoad, 42));
        assert!(m.header_store_pending(42));
        while m.header_store_pending(42) {
            assert!(!m.load_ready(1, Port::HeaderLoad), "load bypassed store");
            m.tick();
        }
        while !m.load_ready(1, Port::HeaderLoad) {
            m.tick();
        }
        assert!(m.stats().comparator_blocked_cycles > 0);
        m.consume_load(1, Port::HeaderLoad);
        assert!(m.all_idle());
    }

    #[test]
    fn sequential_body_stream_stays_in_the_open_row() {
        // A Cheney-style sequential scan: after the first (empty)
        // access, every following word in the row is a hit.
        let mut m = mem(1);
        for addr in 0..8u32 {
            assert!(m.try_issue(0, Port::BodyLoad, addr));
            while !m.load_ready(0, Port::BodyLoad) {
                m.tick();
            }
            m.consume_load(0, Port::BodyLoad);
        }
        assert_eq!(dstats(&m).row_empties, 1);
        assert_eq!(dstats(&m).row_hits, 7);
    }

    #[test]
    fn horizon_contracts_match_the_fixed_model_shape() {
        let mut m = mem(1);
        assert_eq!(m.next_event_cycle(), None, "idle system has no horizon");
        assert_eq!(m.next_activity_cycle(), None, "idle system is quiet");
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        assert_eq!(m.next_event_cycle(), None, "queued request blocks skipping");
        assert_eq!(m.next_activity_cycle(), Some(m.cycle() + 1));
        m.tick(); // start at 1, done at 5
        assert_eq!(m.next_event_cycle(), Some(5));
        assert_eq!(m.next_activity_cycle(), Some(5));
        assert!(!m.next_tick_starts_service_only(), "nothing queued");
        m.fast_forward(5 - 1 - m.cycle());
        m.tick();
        assert!(m.load_ready(0, Port::BodyLoad));
        assert_eq!(
            m.next_activity_cycle(),
            None,
            "completed load awaiting its owner is not future activity"
        );
        m.consume_load(0, Port::BodyLoad);
    }

    #[test]
    fn fast_forward_is_bit_exact_against_naive_ticks() {
        let run = |ff: bool| {
            let mut m = mem(2);
            m.enable_event_log();
            assert!(m.try_issue(0, Port::HeaderStore, 42));
            assert!(m.try_issue(1, Port::HeaderLoad, 42));
            m.tick(); // store starts; load blocked
            if ff {
                let horizon = MemBackend::next_event_cycle(&m).expect("in service");
                let jump = horizon - 1 - m.cycle();
                MemBackend::fast_forward(&mut m, jump);
            }
            while !m.load_ready(1, Port::HeaderLoad) {
                m.tick();
            }
            m.consume_load(1, Port::HeaderLoad);
            (m.take_event_log(), MemBackend::into_stats(m))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wake_feed_reports_retirements() {
        let mut m = mem(2);
        m.enable_wake_feed(2);
        assert!(m.try_issue(0, Port::BodyLoad, 0)); // bank 0
        assert!(m.try_issue(1, Port::BodyStore, 16)); // bank 1
        m.tick(); // both start (bandwidth 2): done at 5
        assert!(m.wakes().is_empty(), "nothing retired yet");
        for _ in 0..4 {
            m.tick();
        }
        assert_eq!(m.wakes(), &[0, 1]);
        m.clear_wakes();
        m.consume_load(0, Port::BodyLoad);
        assert!(m.all_idle());
    }

    #[test]
    fn event_log_records_dram_access_outcomes() {
        let mut m = mem(1);
        m.enable_event_log();
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        while !m.load_ready(0, Port::BodyLoad) {
            m.tick();
        }
        m.consume_load(0, Port::BodyLoad);
        let events = m.take_event_log();
        let access = events
            .iter()
            .find_map(|r| match r.event {
                MemEvent::DramAccess {
                    bank,
                    outcome,
                    bank_queue,
                    ..
                } => Some((bank, outcome, bank_queue)),
                _ => None,
            })
            .expect("DramAccess logged");
        assert_eq!(access, (0, RowOutcome::Empty, 0));
        // The DramAccess immediately precedes its ServiceStart.
        let pos = events
            .iter()
            .position(|r| matches!(r.event, MemEvent::DramAccess { .. }))
            .unwrap();
        assert!(matches!(
            events[pos + 1].event,
            MemEvent::ServiceStart { latency: 4, .. }
        ));
    }

    #[test]
    fn extra_latency_applies_to_every_access() {
        let mut m = DramMemorySystem::new(
            1,
            MemConfig {
                bandwidth: 2,
                backend: MemBackendKind::Dram(dram_cfg()),
                ..MemConfig::default()
            }
            .with_extra_latency(20),
        );
        assert!(m.try_issue(0, Port::BodyLoad, 0));
        m.tick(); // start at 1: empty (4) + 20 → done at 25
        while !m.load_ready(0, Port::BodyLoad) {
            m.tick();
        }
        assert_eq!(m.cycle(), 25);
    }

    #[test]
    fn preset_table_is_monotone_in_speed_grade() {
        let presets: Vec<DramConfig> = ["150ns", "120ns", "100ns", "80ns"]
            .iter()
            .map(|n| DramConfig::preset(n).unwrap())
            .collect();
        for pair in presets.windows(2) {
            let (slow, fast) = (&pair[0], &pair[1]);
            assert!(fast.t_ras <= slow.t_ras);
            assert!(fast.t_cas <= slow.t_cas);
            assert!(fast.t_rp <= slow.t_rp);
        }
        assert_eq!(DramConfig::preset("60ns"), None);
    }
}
