//! Model-based property tests of the split-transaction memory system.

use hwgc_memsim::{MemConfig, MemorySystem, Port, PORT_COUNT};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Issue { core: usize, port: usize, addr: u32 },
    Tick,
    Consume { core: usize, port: usize },
}

fn ops(cores: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..cores), (0..PORT_COUNT), (0u32..64)).prop_map(|(core, port, addr)| Op::Issue {
                core,
                port,
                addr
            }),
            Just(Op::Tick),
            ((0..cores), prop_oneof![Just(0usize), Just(2)])
                .prop_map(|(core, port)| Op::Consume { core, port }),
        ],
        1..200,
    )
}

fn port_of(i: usize) -> Port {
    Port::ALL[i]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Whatever the program does, draining ticks retire every store and
    /// complete every load; consuming everything leaves the system idle.
    #[test]
    fn all_traffic_drains(ops in ops(3), lat in 0u32..6, bw in 1u32..5) {
        let cfg = MemConfig { latency: lat, bandwidth: bw, ..MemConfig::default() };
        let mut m = MemorySystem::new(3, cfg);
        let mut outstanding_loads: Vec<(usize, usize)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Issue { core, port, addr } => {
                    let p = port_of(port);
                    if !m.port_busy(core, p) {
                        prop_assert!(m.try_issue(core, p, addr));
                        if p.is_load() {
                            outstanding_loads.push((core, port));
                        }
                    } else {
                        prop_assert!(!m.try_issue(core, p, addr));
                    }
                }
                Op::Tick => m.tick(),
                Op::Consume { core, port } => {
                    let p = port_of(port);
                    if m.load_ready(core, p) {
                        m.consume_load(core, p);
                        outstanding_loads.retain(|&(c, q)| (c, q) != (core, port));
                    }
                }
            }
        }
        // Drain: generous bound covers queueing behind limited bandwidth.
        for _ in 0..(ops.len() as u32 * (lat + 2) + 64) {
            m.tick();
        }
        for (core, port) in outstanding_loads {
            let p = port_of(port);
            prop_assert!(m.load_ready(core, p), "load on {core}/{port} never completed");
            m.consume_load(core, p);
        }
        prop_assert!(m.all_idle());
    }

    /// A header load issued while a header store to the same address is
    /// pending never completes before that store retires.
    #[test]
    fn comparator_array_orders_header_traffic(delay in 0u32..8, lat in 1u32..6) {
        let cfg = MemConfig { latency: lat, bandwidth: 1, ..MemConfig::default() };
        let mut m = MemorySystem::new(2, cfg);
        prop_assert!(m.try_issue(0, Port::HeaderStore, 7));
        for _ in 0..delay {
            m.tick();
            if m.header_store_pending(7) {
                // While the store is pending, a racing load must not be
                // servable in the same or an earlier cycle.
                break;
            }
        }
        if m.header_store_pending(7) {
            prop_assert!(m.try_issue(1, Port::HeaderLoad, 7));
            while m.header_store_pending(7) {
                prop_assert!(!m.load_ready(1, Port::HeaderLoad));
                m.tick();
            }
            for _ in 0..(2 * lat as usize + 8) {
                m.tick();
            }
            prop_assert!(m.load_ready(1, Port::HeaderLoad));
            m.consume_load(1, Port::HeaderLoad);
        }
    }

    /// Bandwidth never lets more requests start per cycle than configured:
    /// with bandwidth 1 and N simultaneous random-access loads, completion
    /// times are strictly staggered.
    #[test]
    fn bandwidth_staggers_service(n in 2usize..4) {
        let cfg = MemConfig { latency: 3, bandwidth: 1, ..MemConfig::default() };
        let mut m = MemorySystem::new(n, cfg);
        for c in 0..n {
            // Distinct non-sequential addresses: no burst shortcut.
            prop_assert!(m.try_issue(c, Port::HeaderLoad, (c as u32) * 100));
        }
        let mut completion = vec![None; n];
        for cycle in 0..100u64 {
            m.tick();
            for (c, slot) in completion.iter_mut().enumerate() {
                if slot.is_none() && m.load_ready(c, Port::HeaderLoad) {
                    *slot = Some(cycle);
                }
            }
        }
        let times: Vec<u64> = completion.into_iter().map(|c| c.unwrap()).collect();
        for w in times.windows(2) {
            prop_assert!(w[1] > w[0], "service must be staggered: {times:?}");
        }
    }
}
