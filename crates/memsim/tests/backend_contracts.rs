//! Property tests for the `MemBackend` timing contracts, run against
//! BOTH backends (the fixed-latency model and the bank/row DRAM model).
//!
//! The engine's fast-forward machinery (event-horizon jumps, the sparse
//! active-set loop) is only sound if every backend honors three
//! contracts, tested here:
//!
//! 1. **Activity lower bound** — `next_activity_cycle` never overshoots:
//!    no core-visible change (a load completing, a store freeing its
//!    port) happens strictly before the returned cycle; `None` means no
//!    change ever happens without new issues.
//! 2. **Bank timing order** — (DRAM) replaying the event log, each
//!    retirement lands exactly `latency` after its service start, and
//!    within a bank consecutive service starts are separated by the
//!    earlier access's full occupancy (one access in flight per bank,
//!    plus the closed-page precharge re-arm).
//! 3. **Wake completeness** — with the wake feed on, every core whose
//!    load became ready or whose store freed its buffer in a tick
//!    appears in that tick's `wakes()` (shadow comparison against
//!    polling, the naive engine's view).

use hwgc_memsim::{
    DramConfig, DramMemorySystem, MemBackend, MemBackendKind, MemConfig, MemEvent, MemorySystem,
    PagePolicy, Port, PORT_COUNT,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Issue { core: usize, port: usize, addr: u32 },
    Tick,
    Consume { core: usize, port: usize },
}

fn ops(cores: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..cores), (0..PORT_COUNT), (0u32..256)).prop_map(|(core, port, addr)| Op::Issue {
                core,
                port,
                addr
            }),
            Just(Op::Tick),
            ((0..cores), prop_oneof![Just(0usize), Just(2)])
                .prop_map(|(core, port)| Op::Consume { core, port }),
        ],
        1..160,
    )
}

fn dram_configs() -> impl Strategy<Value = DramConfig> {
    (
        (1u32..3, 1u32..3, 1u32..4, 2u32..8),
        (
            prop_oneof![Just(1u32), Just(2), Just(4)],
            prop_oneof![Just(4u32), Just(16), Just(64)],
            prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        ),
    )
        .prop_map(
            |((t_rcd, t_cas, t_rp, t_ras), (n_banks, row_words, page_policy))| DramConfig {
                t_rcd,
                t_cas,
                t_rp,
                t_ras,
                n_banks,
                row_words,
                page_policy,
            },
        )
}

const CORES: usize = 3;

/// Apply one op, tolerating busy ports / unready loads (the strategies
/// generate blind sequences; the protocol checks are elsewhere).
fn apply<B: MemBackend>(m: &mut B, op: Op) {
    match op {
        Op::Issue { core, port, addr } => {
            let p = Port::ALL[port];
            if !m.port_busy(core, p) {
                assert!(m.try_issue(core, p, addr));
            }
        }
        Op::Tick => m.tick(),
        Op::Consume { core, port } => {
            let p = Port::ALL[port];
            if m.load_ready(core, p) {
                m.consume_load(core, p);
            }
        }
    }
}

/// The naive engine's view of a backend: which `(core, port)` pairs a
/// core could act on right now (a completed load, or a free buffer).
fn visible_state<B: MemBackend>(m: &B) -> Vec<(bool, bool)> {
    (0..CORES)
        .flat_map(|c| {
            Port::ALL
                .iter()
                .map(move |&p| (p.is_load() && m.load_ready(c, p), m.port_busy(c, p)))
        })
        .collect()
}

/// Contract 1: between `cycle + 1` and `next_activity_cycle() - 1`
/// inclusive, ticking changes nothing a core can see.
fn check_activity_lower_bound<B: MemBackend + Clone>(m: &B) {
    let mut shadow = m.clone();
    match m.next_activity_cycle() {
        None => {
            // No future activity at all: a long run of hollow ticks must
            // leave the visible state untouched.
            let before = visible_state(&shadow);
            for _ in 0..64 {
                shadow.tick();
                prop_assert_eq!(
                    &visible_state(&shadow),
                    &before,
                    "activity after next_activity_cycle() == None"
                );
            }
        }
        Some(target) => {
            let before = visible_state(&shadow);
            // Strictly before the bound nothing may change. (The bound
            // may be conservative: activity at `target` is allowed but
            // not required.)
            while shadow.cycle() + 1 < target {
                shadow.tick();
                prop_assert_eq!(
                    &visible_state(&shadow),
                    &before,
                    "activity at cycle {} before the {} bound",
                    shadow.cycle(),
                    target
                );
            }
        }
    }
}

/// Drain helper: upper-bounds how long any access chain can take.
fn drain_bound(n_ops: usize, worst_latency: u32) -> usize {
    n_ops * (worst_latency as usize + 2) + 64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Contract 1 on the fixed backend, probed after every op.
    #[test]
    fn fixed_next_activity_is_a_lower_bound(
        ops in ops(CORES),
        lat in 0u32..6,
        bw in 1u32..4,
        extra in prop_oneof![Just(0u32), Just(3)],
    ) {
        let cfg = MemConfig { latency: lat, bandwidth: bw, ..MemConfig::default() }
            .with_extra_latency(extra);
        let mut m = MemorySystem::new(CORES, cfg);
        for &op in &ops {
            apply(&mut m, op);
            check_activity_lower_bound(&m);
        }
    }

    /// Contract 1 on the DRAM backend, probed after every op.
    #[test]
    fn dram_next_activity_is_a_lower_bound(
        ops in ops(CORES),
        dram in dram_configs(),
        bw in 1u32..4,
        extra in prop_oneof![Just(0u32), Just(3)],
    ) {
        let cfg = MemConfig { bandwidth: bw, ..MemConfig::default() }
            .with_backend(MemBackendKind::Dram(dram))
            .with_extra_latency(extra);
        let mut m = DramMemorySystem::new(CORES, cfg);
        for &op in &ops {
            apply(&mut m, op);
            check_activity_lower_bound(&m);
        }
    }

    /// Contract 2: replay the DRAM event log. Retirements land exactly
    /// `latency` after service start, and per bank the next service
    /// start waits for the previous access's full occupancy.
    #[test]
    fn dram_retirement_respects_bank_timing(
        ops in ops(CORES),
        dram in dram_configs(),
        bw in 1u32..4,
    ) {
        let cfg = MemConfig { bandwidth: bw, ..MemConfig::default() }
            .with_backend(MemBackendKind::Dram(dram));
        let mut m = DramMemorySystem::new(CORES, cfg);
        m.enable_event_log();
        for &op in &ops {
            apply(&mut m, op);
        }
        for _ in 0..drain_bound(ops.len(), dram.t_ras + dram.t_rp + dram.t_rcd + dram.t_cas) {
            m.tick();
        }
        for c in 0..CORES {
            for &p in &[Port::HeaderLoad, Port::BodyLoad] {
                if m.load_ready(c, p) {
                    m.consume_load(c, p);
                }
            }
        }
        prop_assert!(m.all_idle(), "traffic failed to drain");

        let log = m.take_event_log();
        // (a) Each ServiceStart's retirement is exactly `latency` later.
        let mut in_service: Vec<Option<(u64, u32)>> = vec![None; CORES * PORT_COUNT];
        // (b) Per-bank: cycle the bank frees up after its last access.
        let mut bank_free_at: Vec<u64> = vec![0; dram.n_banks as usize];
        let mut pending_bank: Option<u32> = None;
        for rec in &log {
            match rec.event {
                MemEvent::DramAccess { bank, .. } => {
                    prop_assert!(pending_bank.is_none(), "DramAccess without ServiceStart");
                    pending_bank = Some(bank);
                    prop_assert!(
                        rec.cycle >= bank_free_at[bank as usize],
                        "bank {} started a new access at {} while busy until {}",
                        bank, rec.cycle, bank_free_at[bank as usize]
                    );
                }
                MemEvent::ServiceStart { core, port, latency } => {
                    let bank = pending_bank.take().expect("ServiceStart without DramAccess");
                    let rearm = match dram.page_policy {
                        PagePolicy::Open => 0,
                        PagePolicy::Closed => dram.t_rp as u64,
                    };
                    bank_free_at[bank as usize] = rec.cycle + latency as u64 + rearm;
                    let slot = core as usize * PORT_COUNT + port as usize;
                    prop_assert!(in_service[slot].is_none(), "double service start");
                    in_service[slot] = Some((rec.cycle, latency));
                }
                MemEvent::Retire { core, port } => {
                    let slot = core as usize * PORT_COUNT + port as usize;
                    let (started, latency) =
                        in_service[slot].take().expect("retire without service");
                    prop_assert_eq!(
                        rec.cycle,
                        started + latency as u64,
                        "retirement not exactly latency after service start"
                    );
                }
                _ => {}
            }
        }
        prop_assert!(in_service.iter().all(Option::is_none), "unretired service");
    }

    /// Contract 3 on the fixed backend: the wake feed reports every core
    /// whose visible state improved in a tick.
    #[test]
    fn fixed_wake_feed_is_complete(
        ops in ops(CORES),
        lat in 0u32..6,
        bw in 1u32..4,
    ) {
        let cfg = MemConfig { latency: lat, bandwidth: bw, ..MemConfig::default() };
        let m = MemorySystem::new(CORES, cfg);
        check_wake_feed(m, ops, lat);
    }

    /// Contract 3 on the DRAM backend.
    #[test]
    fn dram_wake_feed_is_complete(
        ops in ops(CORES),
        dram in dram_configs(),
        bw in 1u32..4,
    ) {
        let cfg = MemConfig { bandwidth: bw, ..MemConfig::default() }
            .with_backend(MemBackendKind::Dram(dram));
        let m = DramMemorySystem::new(CORES, cfg);
        check_wake_feed(m, ops, dram.t_ras + dram.t_rp + dram.t_rcd + dram.t_cas);
    }
}

/// Shadow-naive comparison: before each tick poll the full visible
/// state (as the naive engine would); after it, every improvement —
/// a load turning ready, a busy port freeing — must have its owner in
/// `wakes()`. A parked core relies on exactly this to resume.
fn check_wake_feed<B: MemBackend>(mut m: B, ops: Vec<Op>, worst_latency: u32) {
    m.enable_wake_feed(CORES);
    let mut script = ops.clone();
    // Append draining ticks so late-issued traffic also exercises the feed.
    script.extend(std::iter::repeat_n(
        Op::Tick,
        drain_bound(ops.len(), worst_latency),
    ));
    for op in script {
        if matches!(op, Op::Tick) {
            let before = (0..CORES)
                .map(|c| {
                    Port::ALL
                        .iter()
                        .map(|&p| (p.is_load() && m.load_ready(c, p), m.port_busy(c, p)))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>();
            m.clear_wakes();
            m.tick();
            for (c, ports) in before.iter().enumerate() {
                let improved = Port::ALL.iter().enumerate().any(|(i, &p)| {
                    let (was_ready, was_busy) = ports[i];
                    let now_ready = p.is_load() && m.load_ready(c, p);
                    let now_busy = m.port_busy(c, p);
                    (now_ready && !was_ready) || (was_busy && !now_busy)
                });
                if improved {
                    prop_assert!(
                        m.wakes().contains(&c),
                        "core {}'s state improved but the wake feed missed it (wakes: {:?})",
                        c,
                        m.wakes()
                    );
                }
            }
        } else {
            apply(&mut m, op);
        }
    }
}
