//! Per-cycle signal tracing — the model's analogue of the paper's
//! monitoring framework (Section VI-A: "a monitoring framework … allows
//! to trace up to 32 internal signals in each clock cycle", streamed to a
//! measurement PC over a dedicated Gigabit link and analyzed offline).
//!
//! A [`SignalTrace`] samples the architecturally interesting signals every
//! `sample_every` cycles: the `scan` and `free` registers, the gray
//! population (their distance in words), the number of busy cores, the
//! header-FIFO occupancy, the DRAM service-queue depth, and each core's
//! microprogram state. Traces can be dumped as CSV for offline analysis
//! (`trace_dump` binary) or inspected programmatically.
//!
//! A trace created with [`SignalTrace::with_events`] additionally carries
//! the synchronization block's cycle-stamped operation log
//! ([`hwgc_sync::SbEvent`]) — every lock acquisition/failure/release,
//! register write and busy-bit change, plus the termination event. The
//! rows are periodic *samples*; the events are the *complete* record of
//! SB traffic, which is what invariant checkers (the `hwgc-check` trace
//! lint) consume.

use hwgc_sync::SbEventRecord;

use crate::machine::State;

/// Per-core microprogram states of one sampled cycle, stored inline for
/// up to [`CoreStates::INLINE`] cores (the prototype's maximum) so that
/// pushing a trace row does not allocate. Larger simulated machines spill
/// to the heap. Dereferences to `[State]`.
#[derive(Clone)]
pub struct CoreStates {
    inline: [State; CoreStates::INLINE],
    len: usize,
    /// Used only when `len > INLINE`.
    spill: Vec<State>,
}

impl CoreStates {
    /// Inline capacity: the paper's prototype supports up to 16 cores.
    pub const INLINE: usize = 16;

    /// Empty state list.
    pub fn new() -> CoreStates {
        CoreStates {
            inline: [State::Poll; CoreStates::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Append one core's state.
    pub fn push(&mut self, state: State) {
        if self.len < CoreStates::INLINE {
            self.inline[self.len] = state;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(state);
        }
        self.len += 1;
    }

    /// The states as a slice.
    pub fn as_slice(&self) -> &[State] {
        if self.len <= CoreStates::INLINE {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl Default for CoreStates {
    fn default() -> CoreStates {
        CoreStates::new()
    }
}

impl std::ops::Deref for CoreStates {
    type Target = [State];
    fn deref(&self) -> &[State] {
        self.as_slice()
    }
}

impl std::fmt::Debug for CoreStates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for CoreStates {
    fn eq(&self, other: &CoreStates) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CoreStates {}

impl FromIterator<State> for CoreStates {
    fn from_iter<I: IntoIterator<Item = State>>(iter: I) -> CoreStates {
        let mut cs = CoreStates::new();
        for s in iter {
            cs.push(s);
        }
        cs
    }
}

impl From<Vec<State>> for CoreStates {
    fn from(v: Vec<State>) -> CoreStates {
        v.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a CoreStates {
    type Item = &'a State;
    type IntoIter = std::slice::Iter<'a, State>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One sampled cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    pub cycle: u64,
    pub scan: u32,
    pub free: u32,
    /// Words between `scan` and `free` — the work list, in words.
    pub gray_words: u32,
    /// Number of busy cores.
    pub busy_cores: u32,
    /// Header-FIFO occupancy.
    pub fifo_len: u32,
    /// Requests waiting for DRAM service.
    pub queue_depth: u32,
    /// Microprogram state per core.
    pub core_states: CoreStates,
}

/// A sampled signal trace of one collection cycle.
#[derive(Debug, Clone)]
pub struct SignalTrace {
    /// Sample period in cycles (1 = every cycle, like the FPGA monitor).
    pub sample_every: u64,
    rows: Vec<TraceRow>,
    capture_events: bool,
    events: Vec<SbEventRecord>,
}

impl SignalTrace {
    /// Trace sampling every `sample_every` cycles.
    pub fn new(sample_every: u64) -> SignalTrace {
        assert!(sample_every >= 1);
        SignalTrace {
            sample_every,
            rows: Vec::new(),
            capture_events: false,
            events: Vec::new(),
        }
    }

    /// Trace that additionally captures the SB's complete operation log
    /// (one record per lock/register/busy-bit operation, cycle-stamped).
    pub fn with_events(sample_every: u64) -> SignalTrace {
        SignalTrace {
            capture_events: true,
            ..SignalTrace::new(sample_every)
        }
    }

    /// Should the engine record SB events into this trace?
    pub fn capture_events(&self) -> bool {
        self.capture_events
    }

    /// The captured SB events (empty unless built with `with_events`).
    pub fn events(&self) -> &[SbEventRecord] {
        &self.events
    }

    /// Install the captured event stream (engine-internal; also usable by
    /// tests to lint a synthetic or mutated stream).
    pub fn set_events(&mut self, events: Vec<SbEventRecord>) {
        self.events = events;
    }

    /// Append one SB event record (bus-internal: [`TraceProbe`] receives
    /// the bridged SB stream one record at a time).
    pub fn push_event(&mut self, event: SbEventRecord) {
        self.events.push(event);
    }

    /// Should cycle `n` be sampled?
    pub fn wants(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.sample_every)
    }

    /// Record a sample (engine-internal).
    pub fn push(&mut self, row: TraceRow) {
        self.rows.push(row);
    }

    /// The sampled rows.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Peak gray population observed, in words.
    pub fn peak_gray_words(&self) -> u32 {
        self.rows.iter().map(|r| r.gray_words).max().unwrap_or(0)
    }

    /// Mean number of busy cores across samples.
    pub fn mean_busy_cores(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.busy_cores as f64).sum::<f64>() / self.rows.len() as f64
    }

    /// View this trace as an event-bus subscriber. The engine has exactly
    /// one instrumentation path — the [`hwgc_obs::Probe`] bus — so the
    /// classic `collect_traced` front door is `collect_probed` with this
    /// adapter: `Sample` events become rows, bridged SB records become the
    /// event log, everything else is ignored.
    pub fn as_probe(&mut self) -> TraceProbe<'_> {
        TraceProbe { trace: self }
    }

    /// Dump as CSV: one row per sample, one state column per core.
    pub fn write_csv(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        let cores = self.rows.first().map_or(0, |r| r.core_states.len());
        write!(
            w,
            "cycle,scan,free,gray_words,busy_cores,fifo_len,queue_depth"
        )?;
        for c in 0..cores {
            write!(w, ",core{c}")?;
        }
        writeln!(w)?;
        for r in &self.rows {
            write!(
                w,
                "{},{},{},{},{},{},{}",
                r.cycle, r.scan, r.free, r.gray_words, r.busy_cores, r.fifo_len, r.queue_depth
            )?;
            for s in &r.core_states {
                write!(w, ",{s:?}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

/// [`hwgc_obs::Probe`] adapter over a [`SignalTrace`]: the one bridge
/// between the bus and the classic signal-trace/CSV view. Requests a
/// [`hwgc_obs::Event::Sample`] every `sample_every` cycles (which also
/// caps fast-forward jumps, as sampling always has), and subscribes to
/// the SB operation log only when the trace was built
/// [`SignalTrace::with_events`].
pub struct TraceProbe<'a> {
    trace: &'a mut SignalTrace,
}

impl hwgc_obs::Probe for TraceProbe<'_> {
    fn record(&mut self, cycle: u64, event: &hwgc_obs::Event<'_>) {
        match *event {
            hwgc_obs::Event::Sample(s) => self.trace.push(TraceRow {
                cycle,
                scan: s.scan,
                free: s.free,
                gray_words: s.gray_words,
                busy_cores: s.busy_cores,
                fifo_len: s.fifo_len,
                queue_depth: s.queue_depth,
                core_states: s.states.iter().map(|&i| State::from_index(i)).collect(),
            }),
            hwgc_obs::Event::Sb(rec) if self.trace.capture_events => {
                self.trace.push_event(rec);
            }
            _ => {}
        }
    }

    fn next_sample(&self, from: u64) -> Option<u64> {
        let n = self.trace.sample_every;
        Some(from.div_ceil(n) * n)
    }

    fn wants_sb_events(&self) -> bool {
        self.trace.capture_events
    }

    fn wants_mem_events(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cycle: u64, gray: u32, busy: u32) -> TraceRow {
        TraceRow {
            cycle,
            scan: 100,
            free: 100 + gray,
            gray_words: gray,
            busy_cores: busy,
            fifo_len: 0,
            queue_depth: 0,
            core_states: vec![State::Poll, State::Done].into(),
        }
    }

    #[test]
    fn core_states_inline_and_spilled() {
        let inline: CoreStates = (0..CoreStates::INLINE).map(|_| State::Poll).collect();
        assert_eq!(inline.len(), CoreStates::INLINE);
        assert!(inline.iter().all(|&s| s == State::Poll));
        // One past the inline capacity spills to the heap transparently.
        let mut spilled = inline.clone();
        spilled.push(State::Done);
        assert_eq!(spilled.len(), CoreStates::INLINE + 1);
        assert_eq!(spilled[CoreStates::INLINE], State::Done);
        assert_eq!(&spilled[..CoreStates::INLINE], &inline[..]);
        assert_ne!(inline, spilled);
    }

    #[test]
    fn sampling_period() {
        let t = SignalTrace::new(4);
        assert!(t.wants(0));
        assert!(!t.wants(1));
        assert!(t.wants(4));
    }

    #[test]
    fn aggregates() {
        let mut t = SignalTrace::new(1);
        t.push(row(0, 10, 1));
        t.push(row(1, 30, 2));
        t.push(row(2, 20, 0));
        assert_eq!(t.peak_gray_words(), 30);
        assert!((t.mean_busy_cores() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let mut t = SignalTrace::new(1);
        t.push(row(0, 5, 1));
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("core0,core1"));
        assert!(lines[1].contains("Poll"));
    }

    #[test]
    fn empty_trace_aggregates_are_zero() {
        let t = SignalTrace::new(1);
        assert_eq!(t.peak_gray_words(), 0);
        assert_eq!(t.mean_busy_cores(), 0.0);
    }

    #[test]
    fn event_capture_is_opt_in() {
        use hwgc_sync::{SbEvent, SbEventRecord};
        let plain = SignalTrace::new(1);
        assert!(!plain.capture_events());
        let mut t = SignalTrace::with_events(4);
        assert!(t.capture_events());
        assert_eq!(t.sample_every, 4);
        assert!(t.events().is_empty());
        t.set_events(vec![SbEventRecord {
            cycle: 3,
            event: SbEvent::SetBusy { core: 1 },
        }]);
        assert_eq!(t.events().len(), 1);
    }
}
