//! The cycle-level simulation engine.
//!
//! The engine owns the synchronization block, the memory system and the N
//! core state machines, and advances them in lock step: each simulated
//! clock cycle, the memory system ticks first (retiring completed
//! transactions and starting new DRAM services), then every core executes
//! one tick **in index order**. Ticking in index order realizes the SB's
//! static prioritization: when several cores contend for a lock in the
//! same cycle, the lowest-indexed requester acquires it; and a lock
//! released by core *i* can be re-acquired by a later-ticking core in the
//! same cycle — both exactly as in the paper's hardware.
//!
//! A collection cycle has three phases, mirroring Section V-E:
//!
//! 1. **Root phase**: core 1 (index 0 here) stops the main processor,
//!    flips the semispaces, initialises `scan` and `free`, and evacuates
//!    the root set sequentially. Other cores wait at the initialization
//!    barrier (modelled by starting the parallel loop afterwards).
//! 2. **Parallel scan loop**: all cores run the microprogram until a core
//!    observes `scan == free` with all busy bits clear.
//! 3. **Drain**: all store buffers flush before the main processor would
//!    be restarted.
//!
//! The front doors share one loop: [`SimCollector::collect`]
//! (stop-the-world, the paper's configuration),
//! [`SimCollector::collect_concurrent`] (extension 3: the mutator ticks
//! first each cycle, at top SB priority) and
//! [`SimCollector::collect_probed`] (the observability bus —
//! [`SimCollector::collect_traced`] is `collect_probed` with the
//! [`SignalTrace`] adapter). The loop is generic over its
//! [`hwgc_obs::Probe`]; the probe-less doors pass [`NullProbe`], whose
//! `ACTIVE == false` compiles every emission site away, keeping the
//! steady-state loop allocation-free at its current cycle costs.

pub(crate) mod par;

use hwgc_heap::header::Header;
use hwgc_heap::{Addr, Heap, NULL};
use hwgc_memsim::{DramMemorySystem, HeaderFifo, MemBackend, MemBackendKind, MemorySystem};
use hwgc_obs::{Event, HostProf, NullHostProf, NullProbe, Probe, SampleRec};
use hwgc_sync::{LockKind, SyncBlock};

use crate::concurrent::{MutatorConfig, MutatorSm, MutatorStats};
use crate::config::{EngineKind, GcConfig};
use crate::engine::par::{ParPool, Windower};
use crate::machine::{CoreSm, Ctx, State, TickOutcome, WorkCounters};
use crate::schedule::{CoreView, RandomOrder, SchedulePolicy, ScheduleView};
use crate::stats::{GcStats, StallReason};
use crate::trace::SignalTrace;

/// Result of a simulated collection cycle.
#[derive(Debug, Clone)]
pub struct GcOutcome {
    /// Final allocation frontier in tospace.
    pub free: Addr,
    /// Cycle-accurate statistics.
    pub stats: GcStats,
}

/// Result of a collection cycle that ran concurrently with the mutator.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Final allocation frontier (live data + objects allocated mid-GC).
    pub free: Addr,
    /// Collector statistics.
    pub stats: GcStats,
    /// Mutator progress and barrier statistics.
    pub mutator: MutatorStats,
}

/// The parallel collector on the simulated multi-core GC coprocessor.
#[derive(Debug, Clone, Copy)]
pub struct SimCollector {
    cfg: GcConfig,
}

/// The `engine.park.*` hostprof counter key for a park on `reason` —
/// one count per park *event* (the simulated cycles spent parked are in
/// `GcStats`; this is how often the sparse engine transitions a core to
/// sleep, per wake-condition class).
#[inline]
fn park_key(reason: StallReason) -> &'static str {
    match reason {
        StallReason::ScanLock => "engine.park.scan_lock",
        StallReason::FreeLock => "engine.park.free_lock",
        StallReason::HeaderLock => "engine.park.header_lock",
        StallReason::BodyLoad => "engine.park.body_load",
        StallReason::BodyStore => "engine.park.body_store",
        StallReason::HeaderLoad => "engine.park.header_load",
        StallReason::HeaderStore => "engine.park.header_store",
        StallReason::EmptySpin => "engine.park.empty_spin",
        StallReason::Drain => "engine.park.drain",
    }
}

/// Close a core's open stall run on the bus: emit the
/// [`Event::StallSpan`] for the `len` consecutive stalled cycles starting
/// at stamp `since`, stamped with the last stalled cycle. A span mirrors
/// the exact `StallBreakdown::record`/`record_n` calls of the run, so per
/// (core, reason) span lengths reconcile with the engine's stall counters
/// by construction.
#[inline]
fn flush_stall_run<P: Probe>(
    probe: &mut P,
    core: usize,
    run: &mut Option<(StallReason, u64, u64)>,
) {
    if let Some((reason, since, len)) = run.take() {
        probe.record(
            since + len - 1,
            &Event::StallSpan {
                core: core as u32,
                reason: reason.index(),
                name: reason.name(),
                since,
                len,
            },
        );
    }
}

impl SimCollector {
    /// Collector with the given configuration.
    pub fn new(cfg: GcConfig) -> SimCollector {
        assert!(cfg.n_cores > 0, "need at least one GC core");
        SimCollector { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Run one stop-the-world collection cycle on `heap` (the paper's
    /// configuration: the main processor is stopped throughout).
    pub fn collect(&self, heap: &mut Heap) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, None, &mut NullProbe, &mut NullHostProf);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle with `host` collecting *host-time*
    /// self-profiling: wall-clock phase timers, engine loop and window
    /// funnel counters, pool scatter/gather latency. Unlike the event
    /// bus, a hostprof does **not** disable the parallel engine's
    /// windows — its deterministic counters are aggregates, invariant
    /// under window splits — so `GcStats` stay bit-identical to
    /// [`SimCollector::collect`] (the differential tests compare them).
    /// Wall-clock quantities never flow back into the simulation.
    pub fn collect_hostprof<H: HostProf>(&self, heap: &mut Heap, host: &mut H) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, None, &mut NullProbe, host);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle with `probe` subscribed to the event bus:
    /// typed, cycle-stamped events for phase boundaries, core state
    /// transitions, worklist claims, FIFO depth changes, periodic signal
    /// samples, and (bridged at the end, stamps already on the engine
    /// clock) the SB and memory-system operation logs. Observation is
    /// passive: the outcome and `GcStats` are bit-identical to
    /// [`SimCollector::collect`].
    pub fn collect_probed<P: Probe>(&self, heap: &mut Heap, probe: &mut P) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, None, probe, &mut NullHostProf);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle while sampling internal signals into
    /// `trace` (extension 4, the paper's monitoring framework). A trace
    /// built with [`SignalTrace::with_events`] also receives the SB's
    /// complete cycle-stamped operation log. This is
    /// [`SimCollector::collect_probed`] with [`SignalTrace::as_probe`]:
    /// the classic CSV view rides the same bus as every other exporter.
    pub fn collect_traced(&self, heap: &mut Heap, trace: &mut SignalTrace) -> GcOutcome {
        let mut probe = trace.as_probe();
        let (free, stats, _) = self.run(heap, None, None, &mut probe, &mut NullHostProf);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle with `policy` choosing the per-cycle core
    /// tick order (any legal SB arbiter — see [`crate::schedule`]). The
    /// functional outcome must match [`SimCollector::collect`] for every
    /// policy; only timing and stall attribution may shift.
    pub fn collect_scheduled(&self, heap: &mut Heap, policy: &mut dyn SchedulePolicy) -> GcOutcome {
        let (free, stats, _) =
            self.run(heap, None, Some(policy), &mut NullProbe, &mut NullHostProf);
        GcOutcome { free, stats }
    }

    /// [`SimCollector::collect_scheduled`] with signal/event tracing —
    /// the full harness configuration used by the `hwgc-check` sweeps.
    pub fn collect_scheduled_traced(
        &self,
        heap: &mut Heap,
        policy: &mut dyn SchedulePolicy,
        trace: &mut SignalTrace,
    ) -> GcOutcome {
        let mut probe = trace.as_probe();
        let (free, stats, _) = self.run(heap, None, Some(policy), &mut probe, &mut NullHostProf);
        GcOutcome { free, stats }
    }

    /// Extension 3 (paper Section V-B): run the collection cycle while the
    /// main processor keeps executing behind a hardware read barrier. The
    /// mutator ticks *first* each cycle (the main processor has top
    /// priority at the SB) and owns SB slot `n_cores`. Its registers (and
    /// any objects it allocated) are appended to the root set afterwards
    /// so everything it holds stays live. See [`crate::concurrent`].
    pub fn collect_concurrent(
        &self,
        heap: &mut Heap,
        mutator_cfg: &MutatorConfig,
    ) -> ConcurrentOutcome {
        let (free, stats, mutator) = self.run(
            heap,
            Some(*mutator_cfg),
            None,
            &mut NullProbe,
            &mut NullHostProf,
        );
        ConcurrentOutcome {
            free,
            stats,
            mutator: mutator.expect("mutator ran"),
        }
    }

    /// The shared collection loop, generic over the bus subscriber. With
    /// [`NullProbe`] every `P::ACTIVE` block compiles away; with an
    /// active probe, observation is passive (identical `GcStats`): bus
    /// events are *transitions*, fast-forward windows are by construction
    /// transition-free, per-cycle SB lock-failure events pin the skip via
    /// `events_pinned`, and sampled cycles cap it via
    /// [`Probe::next_sample`].
    fn run<P: Probe, H: HostProf>(
        &self,
        heap: &mut Heap,
        mutator_cfg: Option<MutatorConfig>,
        policy: Option<&mut dyn SchedulePolicy>,
        probe: &mut P,
        host: &mut H,
    ) -> (Addr, GcStats, Option<MutatorStats>) {
        // Static dispatch on the memory backend: each instantiation of
        // `run_backend` is monomorphized against its concrete backend, so
        // the fixed-latency hot loop compiles exactly as before the trait
        // was introduced.
        match self.cfg.mem.backend {
            MemBackendKind::Fixed => {
                self.run_backend::<P, H, MemorySystem>(heap, mutator_cfg, policy, probe, host)
            }
            MemBackendKind::Dram(_) => {
                self.run_backend::<P, H, DramMemorySystem>(heap, mutator_cfg, policy, probe, host)
            }
        }
    }

    /// [`SimCollector::run`] instantiated for one memory backend. `host`
    /// is the hostprof sink ([`NullHostProf`] on every probe door): like
    /// the probe, each `H::ACTIVE` site compiles away when inactive, so
    /// the quiet hot loop is unchanged.
    fn run_backend<P: Probe, H: HostProf, B: MemBackend>(
        &self,
        heap: &mut Heap,
        mutator_cfg: Option<MutatorConfig>,
        policy: Option<&mut dyn SchedulePolicy>,
        probe: &mut P,
        host: &mut H,
    ) -> (Addr, GcStats, Option<MutatorStats>) {
        let cfg = self.cfg;
        heap.flip();
        // One extra SB slot when the mutator participates (its header/free
        // locking and its busy bit for sound termination detection).
        let sb_slots = cfg.n_cores + usize::from(mutator_cfg.is_some());
        let mut sb = SyncBlock::new(sb_slots);
        sb.set_multiport(cfg.multiport_sb);
        if P::ACTIVE && probe.wants_sb_events() {
            sb.enable_event_log();
        }
        sb.init_pointers(heap.to_base(), heap.to_base());
        let mut mem = B::new_backend(cfg.n_cores, cfg.mem);
        if P::ACTIVE && probe.wants_mem_events() {
            mem.enable_event_log();
        }
        let mut fifo = HeaderFifo::new(cfg.mem.header_fifo_capacity);
        let mut counters = WorkCounters::default();
        let mut stats = GcStats::default();

        // --- Phase 1: sequential root evacuation by core 0 -------------
        if P::ACTIVE {
            probe.record(
                0,
                &Event::Phase {
                    name: "roots",
                    begin: true,
                },
            );
        }
        let host_root_start = host.now();
        self.root_phase(
            heap,
            &mut sb,
            &mut fifo,
            &mut counters,
            &mut stats,
            mem.uncontended_read_latency(),
        );
        if H::ACTIVE {
            let t = host.now();
            host.time("phase.root", t - host_root_start);
            host.span("phase.root", host_root_start, t);
        }
        let host_steady_start = host.now();
        let mut mutator = mutator_cfg.map(|mcfg| MutatorSm::new(mcfg, heap.roots(), cfg.n_cores));

        // --- Phase 2+3: parallel scan loop and drain --------------------
        let mut cores: Vec<CoreSm> = (0..cfg.n_cores).map(CoreSm::new).collect();
        let mut done = false;
        let mut cycles: u64 = stats.root_phase_cycles;
        // Align the SB and memory clocks with the engine's cycle numbering
        // (the root phase advances the SB clock as it charges cycles, but
        // the memory system was just built at cycle 0), so every unit's
        // event stamps equal engine cycles from here on.
        sb.set_cycle(cycles);
        mem.set_cycle(cycles);
        // Mirror of each core's microprogram state as a bus-index buffer:
        // kept current by the transition emissions, borrowed by `Sample`
        // events so sampling never allocates.
        let mut prev_states: Vec<u8> = if P::ACTIVE {
            vec![State::Poll.index(); cfg.n_cores]
        } else {
            Vec::new()
        };
        // Open stall run per core: `(reason, first stalled stamp, length)`.
        // Grown by naive stalled ticks (+1), horizon jumps (+k) and
        // service-start replication (+1); flushed as one `StallSpan` when
        // the cause resolves — so fast-forward emits nothing mid-window
        // and probe-on streams stay identical to the naive loop's.
        let mut stall_runs: Vec<Option<(StallReason, u64, u64)>> = if P::ACTIVE {
            vec![None; cfg.n_cores]
        } else {
            Vec::new()
        };
        let mut prev_fifo_len = fifo.len() as u32;
        if P::ACTIVE {
            probe.record(
                cycles,
                &Event::Phase {
                    name: "roots",
                    begin: false,
                },
            );
            probe.record(
                cycles,
                &Event::Phase {
                    name: "scan",
                    begin: true,
                },
            );
            for (i, &state) in prev_states.iter().enumerate() {
                probe.record(
                    cycles,
                    &Event::CoreState {
                        core: i as u32,
                        state,
                        name: State::name_of(state),
                    },
                );
            }
            if prev_fifo_len > 0 {
                probe.record(
                    cycles,
                    &Event::FifoDepth {
                        depth: prev_fifo_len,
                    },
                );
            }
        }
        let mut order: Vec<usize> = (0..cfg.n_cores).collect();
        // Back-compat: the `tick_permutation_seed` knob is the RandomOrder
        // policy (bit-identical shuffles). An explicit policy wins.
        let mut seeded_fallback = cfg.tick_permutation_seed.map(RandomOrder::new);
        let mut policy: Option<&mut dyn SchedulePolicy> = match policy {
            Some(p) => Some(p),
            None => seeded_fallback
                .as_mut()
                .map(|p| p as &mut dyn SchedulePolicy),
        };
        // Preallocated per-cycle scratch: the steady-state loop must not
        // allocate.
        let mut views: Vec<CoreView> = vec![CoreView::default(); cfg.n_cores];
        let mut outcomes: Vec<TickOutcome> = vec![TickOutcome::Progress; cfg.n_cores];
        // Event-horizon fast-forward is only sound when nothing outside
        // the cores can observe or perturb individual cycles: no mutator
        // (it ticks every cycle) and no schedule policy (stateful
        // arbiters advance their RNG per cycle). Tracing is handled
        // per-jump by capping the skip at the next wanted sample.
        let ff_enabled = cfg.fast_forward && mutator.is_none() && policy.is_none();
        // The sparse active-set engine composes with schedule policies
        // (parked cores keep their slot in the arranged order, and skipped
        // cycles replay `arrange` against the frozen view, so policy RNG
        // streams stay aligned); only a mutator — which ticks every cycle
        // and can touch any SB resource — forces the naive loop. The wake
        // lists use one u64 bitmask, hence the 64-core bound. The parallel
        // engine is the sparse loop plus conservative windows, so it
        // shares the gate.
        let kind = cfg.effective_engine();
        let use_sparse = kind != EngineKind::Naive && mutator.is_none() && cfg.n_cores <= 64;

        if use_sparse {
            // ===========================================================
            // Sparse active-set loop. Contract: bit-identical GcStats, SB
            // event log, probe streams and trace rows to the naive loop
            // below (the differential tests compare both). A core ticks
            // only while its next retry could succeed; otherwise it parks
            // on the wake condition of its stall class:
            //
            //   ScanLock, holder-held ... SB scan-release list
            //   ScanLock, write-port .... stays awake (port re-arms next
            //                             cycle, the retry may succeed)
            //   FreeLock ................ stays awake (the free lock never
            //                             crosses a cycle boundary, so
            //                             every failure is a same-cycle
            //                             conflict)
            //   HeaderLock .............. SB per-address header list
            //   EmptySpin ............... SB empty list (set_free or a
            //                             busy-bit clear re-arms the
            //                             termination test it polls)
            //   memory stalls, Drain .... memory wake feed (only a
            //                             retirement of one of the core's
            //                             own transactions can change its
            //                             retry, and the feed reports
            //                             every retirement)
            //
            // Lock-failure retries are impure (each failed attempt counts,
            // and logs an event when the SB log is on): the skipped
            // attempts are replayed in bulk at wake time, and with the
            // event log on the lock classes simply stay awake so every
            // per-cycle fail event is a real tick. All other parked
            // retries are provably side-effect-free self-loops, so a
            // skipped cycle replays as `record_n` alone.
            //
            // When every core is parked, the clock jumps straight to the
            // earliest wake: the memory system's next activity (its
            // retirement horizon — the event calendar of this engine; all
            // SB wakes are caused by core ticks, which cannot happen while
            // every core sleeps), capped at the next wanted trace sample.
            // ===========================================================
            sb.enable_wake_tracking();
            mem.enable_wake_feed(cfg.n_cores);
            let n = cfg.n_cores;
            // Cores not parked. Parked ⇒ `park_reason` is `Some`, except
            // for Done cores, which never wake (their naive ticks are
            // no-op `Parked` outcomes).
            let mut awake: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            // Cores ticking in the cycle currently executing.
            let mut cur: u64;
            let mut park_reason: Vec<Option<StallReason>> = vec![None; n];
            // Cycle stamp of each core's parking tick (which recorded its
            // own stall); replay at wake covers the cycles after it.
            let mut park_since: Vec<u64> = vec![0; n];
            // Position of each core in this cycle's arranged tick order.
            let mut pos_of: Vec<usize> = vec![0; n];
            // Drain buffer for SB wake notifications (the macro below
            // needs `sb` mutably). A core sits on at most one list.
            let mut wake_scratch: Vec<usize> = Vec::with_capacity(sb_slots);
            let mut done_announced = false;
            // O(1) termination: `Done` is entered only inside a tick and
            // is permanent, so counting the transitions replaces the
            // per-cycle all-cores scan. `mem.all_idle()` is still
            // re-checked on every executed cycle, and with all cores
            // `Done` the clock jumps straight to the retirement that
            // drains the last transaction — the same cycle the naive
            // loop's check first passes.
            let mut done_count: usize = 0;
            // Conservative time windows (EngineKind::Par): legal only in
            // *quiet mode* — nothing that observes or perturbs individual
            // cycles may be attached. Probes and event logs would miss
            // the windowed ticks; a schedule policy (including the
            // tick_permutation_seed fallback) advances per-cycle RNG; a
            // line split claim consults the SB chunk counter mid-copy.
            // The windowed stall bookkeeping also *relies* on probes
            // being off (park stamps are split-invariant only for the
            // aggregate tallies, not for span streams). A hostprof is
            // deliberately *not* part of this gate: its deterministic
            // counters are aggregates (counts and totals, never
            // per-cycle streams), invariant under window splits, so
            // windows stay enabled and hostprof-on `GcStats` remain
            // bit-identical — which is also what lets it observe the
            // window funnel at all.
            let windowed = kind == EngineKind::Par
                && policy.is_none()
                && !P::ACTIVE
                && !sb.event_log_enabled()
                && !mem.event_log_enabled()
                && cfg.line_split.is_none();
            let mut windower = if windowed {
                Some(Windower::new())
            } else {
                None
            };
            let mut pool: Option<ParPool> = None;
            // O(1) window-candidate gate: number of cores currently parked
            // on a body load inside an eligible pure copy run (>= 2 words
            // left). Maintained at the three park-state transitions below;
            // purely an optimization — the planner re-filters.
            let mut win_cands: u32 = 0;
            let is_win_cand = |sm: &CoreSm| {
                sm.copy_run()
                    .is_some_and(|r| !r.in_store && r.end - r.idx >= 2)
            };

            // Wake core `$w` if parked: replay the stalls its skipped
            // retries would have recorded, then re-admit it — into the
            // executing cycle when `$this_cycle` (its slot in the tick
            // order is still ahead, or the wake arrived with the memory
            // tick at cycle start), else from the next cycle. `cycles` is
            // pre-increment here, so the executing cycle is `cycles + 1`:
            // a core ticking this cycle replays `cycles - park_since`
            // skipped stalls, one more if its retry this cycle already
            // failed behind the waker's back. `$wake_key` is the hostprof
            // counter of the wake's cause class (`engine.wake.*`).
            macro_rules! wake_parked {
                ($w:expr, $this_cycle:expr, $wake_key:expr) => {{
                    let w: usize = $w;
                    if let Some(reason) = park_reason[w] {
                        if H::ACTIVE {
                            host.count($wake_key, 1);
                        }
                        let this_cycle: bool = $this_cycle;
                        let k = if this_cycle {
                            cycles - park_since[w]
                        } else {
                            cycles + 1 - park_since[w]
                        };
                        if k > 0 {
                            cores[w].stalls.record_n(reason, k);
                            // Parked lock waiters fail their acquisition
                            // every skipped cycle (and only park while the
                            // SB event log is off — see the catalog).
                            match reason {
                                StallReason::ScanLock => sb.bulk_fail(LockKind::Scan, k),
                                StallReason::FreeLock => sb.bulk_fail(LockKind::Free, k),
                                StallReason::HeaderLock => sb.bulk_fail(LockKind::Header, k),
                                _ => {}
                            }
                            if P::ACTIVE {
                                match &mut stall_runs[w] {
                                    Some((r, _, len)) if *r == reason => *len += k,
                                    run => {
                                        flush_stall_run(probe, w, run);
                                        *run = Some((reason, park_since[w] + 1, k));
                                    }
                                }
                            }
                        }
                        if windowed && reason == StallReason::BodyLoad && is_win_cand(&cores[w]) {
                            win_cands -= 1;
                        }
                        park_reason[w] = None;
                        sb.cancel_park(w);
                        awake |= 1u64 << w;
                        if this_cycle {
                            cur |= 1u64 << w;
                        }
                    }
                }};
            }

            // One core's tick plus all its bookkeeping — shared by the
            // policy-ordered scan and the static-priority bit iteration
            // below. `$wake_this_cycle` is a predicate closure over a
            // woken core's index: does its slot in this cycle's arranged
            // order still lie ahead of the one ticking now?
            macro_rules! tick_core {
                ($idx:expr, $wake_this_cycle:expr) => {{
                    let idx: usize = $idx;
                    let wake_this_cycle = $wake_this_cycle;
                    let scan_before = if P::ACTIVE { sb.scan() } else { 0 };
                    let core = &mut cores[idx];
                    let was_done = core.state() == State::Done;
                    let mut ctx = Ctx {
                        heap,
                        sb: &mut sb,
                        mem: &mut mem,
                        fifo: &mut fifo,
                        done: &mut done,
                        counters: &mut counters,
                        test_before_lock: cfg.test_before_lock,
                        line_split: cfg.line_split,
                    };
                    let outcome = core.tick(&mut ctx);
                    if !was_done && cores[idx].state() == State::Done {
                        done_count += 1;
                    }
                    if P::ACTIVE {
                        // Identical per-tick bookkeeping to the naive loop:
                        // ticks are real here, only skipped retries differ.
                        let run = &mut stall_runs[idx];
                        if let TickOutcome::Stalled(reason) = outcome {
                            match run {
                                Some((r, _, len)) if *r == reason => *len += 1,
                                _ => {
                                    flush_stall_run(probe, idx, run);
                                    *run = Some((reason, cycles + 1, 1));
                                }
                            }
                        } else {
                            flush_stall_run(probe, idx, run);
                        }
                        let state = cores[idx].state().index();
                        if prev_states[idx] != state {
                            prev_states[idx] = state;
                            probe.record(
                                cycles + 1,
                                &Event::CoreState {
                                    core: idx as u32,
                                    state,
                                    name: State::name_of(state),
                                },
                            );
                        }
                        let scan_after = sb.scan();
                        if scan_after != scan_before {
                            probe.record(
                                cycles + 1,
                                &Event::WorklistClaim {
                                    core: idx as u32,
                                    from: scan_before,
                                    to: scan_after,
                                },
                            );
                        }
                    }
                    // Park decision (see the wake-condition catalog above).
                    if let TickOutcome::Stalled(reason) = outcome {
                        let park = match reason {
                            StallReason::ScanLock => match sb.scan_owner() {
                                Some(_) if !sb.event_log_enabled() => {
                                    sb.park_on_scan_release(idx);
                                    true
                                }
                                // Write-port conflict (owner already gone)
                                // clears at the next cycle boundary; with
                                // the event log on, every per-cycle
                                // FailScan must be a real tick.
                                _ => false,
                            },
                            StallReason::FreeLock => false,
                            StallReason::HeaderLock => {
                                if sb.event_log_enabled() {
                                    false
                                } else {
                                    let addr = cores[idx]
                                        .pending_header()
                                        .expect("header-lock stall without a pending header");
                                    sb.park_on_header(idx, addr);
                                    true
                                }
                            }
                            StallReason::EmptySpin => {
                                // The empty-worklist retry is pure (no
                                // lock, no stats, no events), so this park
                                // is legal even with the event log on.
                                sb.park_on_empty(idx);
                                true
                            }
                            StallReason::BodyLoad
                            | StallReason::BodyStore
                            | StallReason::HeaderLoad
                            | StallReason::HeaderStore
                            | StallReason::Drain => true,
                        };
                        if park {
                            if H::ACTIVE {
                                host.count(park_key(reason), 1);
                            }
                            if windowed
                                && reason == StallReason::BodyLoad
                                && is_win_cand(&cores[idx])
                            {
                                win_cands += 1;
                            }
                            park_reason[idx] = Some(reason);
                            park_since[idx] = cycles + 1;
                            awake &= !(1u64 << idx);
                        }
                    } else if outcome == TickOutcome::Parked {
                        // Done core: it never ticks again, and the
                        // termination check below fires on the very cycle
                        // the last core arrives — `Parked` naive ticks
                        // record nothing, so nothing is replayed either.
                        awake &= !(1u64 << idx);
                    }
                    // SB operations in this tick may have woken parked
                    // cores. A woken core whose slot in the arranged order
                    // is still ahead ticks this cycle (its retry now
                    // succeeds, as in the naive loop); one whose slot
                    // already passed failed once more behind the waker's
                    // back and resumes next cycle.
                    if !sb.wakes().is_empty() {
                        wake_scratch.clear();
                        wake_scratch.extend_from_slice(sb.wakes());
                        sb.clear_wakes();
                        for i in 0..wake_scratch.len() {
                            let w = wake_scratch[i];
                            wake_parked!(w, wake_this_cycle(w), "engine.wake.sb");
                        }
                    }
                    if done && !done_announced {
                        // Termination broadcast: the done flag is read by
                        // every poll retry, so no park may outlive it.
                        // (Every parked core also has an ordinary wake
                        // pending — this is one-shot insurance.)
                        done_announced = true;
                        for c in 0..n {
                            if park_reason[c].is_some() {
                                wake_parked!(c, wake_this_cycle(c), "engine.wake.done");
                            }
                        }
                    }
                }};
            }

            loop {
                if awake == 0 {
                    // Parallel-engine window: with every core parked and
                    // the memory system window-ready, try to advance the
                    // pure copy streams to a conservatively safe horizon
                    // in one step (see `engine::par` and DESIGN §10). On
                    // success the heap writes fan out across the host
                    // pool; on failure fall through to the ordinary jump.
                    if win_cands > 0 {
                        if let Some(wd) = windower.as_mut() {
                            if cycles < wd.snooze_until {
                                // Throttled after a failed attempt; the
                                // funnel counts the skipped instants too.
                                if H::ACTIVE {
                                    host.count("win.snoozed", 1);
                                }
                            } else {
                                if H::ACTIVE {
                                    host.count("win.attempted", 1);
                                }
                                let plan = wd.plan(
                                    cycles,
                                    cfg.max_cycles,
                                    cfg.mem.bandwidth,
                                    u64::from(cfg.mem.latency),
                                    u64::from(cfg.mem.extra_latency),
                                    &cores,
                                    &park_reason,
                                    &park_since,
                                    &mem,
                                );
                                if plan.is_none() {
                                    if H::ACTIVE {
                                        host.count(wd.last_veto(), 1);
                                    }
                                    // Failed attempts are throttled: windows
                                    // open in chains (each fire re-parks the
                                    // streams straight into the next attempt),
                                    // so between chains a short cooldown costs
                                    // at most a clipped first window.
                                    wd.snooze_until = wd.snooze_until.max(cycles + 64);
                                }
                                if let Some(win) = plan {
                                    let w = win.end_cycle - cycles;
                                    if H::ACTIVE {
                                        host.count("win.fired", 1);
                                        host.sample("win.len", w);
                                        host.sample(
                                            "win.copy_words",
                                            wd.copies().iter().map(|s| u64::from(s.len)).sum(),
                                        );
                                    }
                                    for f in wd.finishes() {
                                        // The consumed-but-unstored boundary
                                        // word is read from fromspace, which
                                        // no window copy writes.
                                        let store_val = if f.in_store {
                                            heap.word(f.copy_src + f.copy_len)
                                        } else {
                                            0
                                        };
                                        cores[f.core]
                                            .set_copy_run_parked(f.new_idx, f.in_store, store_val);
                                        if f.load_stalls > 0 {
                                            cores[f.core]
                                                .stalls
                                                .record_n(StallReason::BodyLoad, f.load_stalls);
                                        }
                                        if f.store_stalls > 0 {
                                            cores[f.core]
                                                .stalls
                                                .record_n(StallReason::BodyStore, f.store_stalls);
                                        }
                                        park_reason[f.core] = Some(if f.in_store {
                                            StallReason::BodyStore
                                        } else {
                                            StallReason::BodyLoad
                                        });
                                        park_since[f.core] = f.park_since;
                                        if f.in_store || !is_win_cand(&cores[f.core]) {
                                            win_cands -= 1;
                                        }
                                    }
                                    mem.apply_body_window(
                                        win.end_cycle,
                                        win.busy_ticks,
                                        win.occupancy_sum,
                                        wd.patches(),
                                    );
                                    cycles = win.end_cycle;
                                    sb.fast_forward(w);
                                    if sb.scan() == sb.free() {
                                        stats.empty_worklist_cycles += w;
                                    }
                                    let p = pool.get_or_insert_with(|| {
                                        ParPool::new_profiled(cfg.host_threads, H::ACTIVE)
                                    });
                                    if H::ACTIVE {
                                        let t0 = host.now();
                                        p.copy(heap, wd.copies(), cfg.par_copy_threshold);
                                        host.time("pool.copy", host.now() - t0);
                                    } else {
                                        p.copy(heap, wd.copies(), cfg.par_copy_threshold);
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                    // Every core is parked: jump the clock to the earliest
                    // wake. SB wakes need a core tick, so the only future
                    // activity is the memory system's.
                    let wake_target = mem.next_activity_cycle().unwrap_or(u64::MAX);
                    assert!(
                        wake_target != u64::MAX,
                        "deadlock: every core parked with no wake condition; \
                         park reasons {:?}; oldest in-flight txn age {:?}; core states {:?}",
                        park_reason,
                        mem.oldest_inflight_age(),
                        cores.iter().map(|c| c.state()).collect::<Vec<_>>()
                    );
                    // Cores resume at `wake_target`; the skip covers the
                    // hollow cycles before it — unless the probe wants a
                    // cycle sampled first, in which case land exactly on
                    // it (state is frozen, so the sample replays bit for
                    // bit) and keep jumping from there.
                    let mut k = wake_target - 1 - cycles;
                    let mut sample_landing = false;
                    if P::ACTIVE {
                        if let Some(ns) = probe.next_sample(cycles + 1) {
                            if ns < wake_target {
                                k = ns - cycles;
                                sample_landing = true;
                            }
                        }
                    }
                    // Run out of cycles exactly where the naive loop would
                    // panic: cap the jump one short of the bound, so the
                    // following (hollow) real cycle trips the epilogue
                    // assert with the exact naive cycle count.
                    let cap = cfg.max_cycles - 1 - cycles;
                    if k > cap {
                        k = cap;
                        sample_landing = false;
                    }
                    if k > 0 {
                        if H::ACTIVE {
                            host.count("engine.jump.all_parked", 1);
                            host.count("engine.jump.all_parked_cycles", k);
                            host.sample("engine.jump.len", k);
                        }
                        if let Some(p) = policy.as_deref_mut() {
                            // Replay the per-cycle arranges against the
                            // frozen state so the policy's RNG stream (and
                            // therefore every later cycle's order) matches
                            // the naive loop.
                            for (i, (view, core)) in views.iter_mut().zip(&cores).enumerate() {
                                *view = CoreView {
                                    pending_header: core.pending_header(),
                                    holds_header: sb.header_lock_of(i),
                                    holds_scan: sb.holds_scan(i),
                                    holds_free: sb.holds_free(i),
                                    busy: sb.is_busy(i),
                                };
                            }
                            let view = ScheduleView {
                                scan: sb.scan(),
                                free: sb.free(),
                                cores: &views,
                            };
                            for x in 1..=k {
                                p.arrange(cycles + x, &view, &mut order);
                            }
                        }
                        cycles += k;
                        sb.fast_forward(k);
                        mem.fast_forward(k);
                        if sb.scan() == sb.free() {
                            stats.empty_worklist_cycles += k;
                        }
                        if P::ACTIVE && sample_landing {
                            probe.record(
                                cycles,
                                &Event::Sample(SampleRec {
                                    scan: sb.scan(),
                                    free: sb.free(),
                                    gray_words: sb.free() - sb.scan(),
                                    busy_cores: sb.busy_count() as u32,
                                    fifo_len: fifo.len() as u32,
                                    queue_depth: mem.queue_len() as u32,
                                    states: &prev_states,
                                    state_name: State::name_of,
                                }),
                            );
                        }
                        continue;
                    }
                    // k == 0: the very next tick has memory work (a queued
                    // service start or a comparator re-check); run it for
                    // real below — with no cores ticking, it is cheap.
                    if H::ACTIVE {
                        host.count("engine.calendar.pops", 1);
                    }
                }

                if H::ACTIVE {
                    host.count("engine.cycles_executed", 1);
                    let t0 = host.now();
                    mem.tick();
                    host.time("mem.tick", host.now() - t0);
                } else {
                    mem.tick();
                }
                sb.begin_cycle();
                cur = awake;
                // Retirements in this memory tick wake their owners into
                // this cycle — exactly the cycle the naive loop would
                // first see the retry succeed.
                for i in 0..mem.wakes().len() {
                    let w = mem.wakes()[i];
                    wake_parked!(w, true, "engine.wake.mem");
                }
                mem.clear_wakes();
                if let Some(p) = policy.as_deref_mut() {
                    for (i, (view, core)) in views.iter_mut().zip(&cores).enumerate() {
                        *view = CoreView {
                            pending_header: core.pending_header(),
                            holds_header: sb.header_lock_of(i),
                            holds_scan: sb.holds_scan(i),
                            holds_free: sb.holds_free(i),
                            busy: sb.is_busy(i),
                        };
                    }
                    let view = ScheduleView {
                        scan: sb.scan(),
                        free: sb.free(),
                        cores: &views,
                    };
                    p.arrange(cycles + 1, &view, &mut order);
                    for (pos, &idx) in order.iter().enumerate() {
                        pos_of[idx] = pos;
                    }
                    for (pos, &idx) in order.iter().enumerate() {
                        if cur & (1u64 << idx) == 0 {
                            continue;
                        }
                        tick_core!(idx, |w: usize| pos_of[w] > pos);
                    }
                } else {
                    // Static priority (the paper's arbiter): walk only the
                    // set bits of `cur`, ascending — identical order, no
                    // O(n_cores) scan. A wake during core `idx`'s tick
                    // lands this cycle exactly when the woken index is
                    // higher, and the re-OR after each tick folds any such
                    // still-unvisited additions back into the iteration
                    // (`(!1u64) << idx` is the bits strictly above `idx`).
                    let mut rem = cur;
                    while rem != 0 {
                        let idx = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        tick_core!(idx, |w: usize| w > idx);
                        rem |= cur & ((!1u64) << idx);
                    }
                }
                cycles += 1;
                if sb.scan() == sb.free() {
                    stats.empty_worklist_cycles += 1;
                }
                if P::ACTIVE {
                    let fifo_len = fifo.len() as u32;
                    if fifo_len != prev_fifo_len {
                        prev_fifo_len = fifo_len;
                        probe.record(cycles, &Event::FifoDepth { depth: fifo_len });
                    }
                    if probe.next_sample(cycles) == Some(cycles) {
                        probe.record(
                            cycles,
                            &Event::Sample(SampleRec {
                                scan: sb.scan(),
                                free: sb.free(),
                                gray_words: sb.free() - sb.scan(),
                                busy_cores: sb.busy_count() as u32,
                                fifo_len,
                                queue_depth: mem.queue_len() as u32,
                                states: &prev_states,
                                state_name: State::name_of,
                            }),
                        );
                    }
                }
                if done_count == n && mem.all_idle() {
                    break;
                }
                assert!(
                    cycles < cfg.max_cycles,
                    "simulation exceeded {} cycles; oldest in-flight txn age {:?}; core states {:?}",
                    cfg.max_cycles,
                    mem.oldest_inflight_age(),
                    cores.iter().map(|c| c.state()).collect::<Vec<_>>()
                );
            }
            debug_assert!(cores.iter().all(|c| c.state() == State::Done));
            if H::ACTIVE {
                if let Some(p) = &pool {
                    // Host-thread-count-dependent quantities are *notes*
                    // (quarantined with the wall-clock timers), never
                    // deterministic counters: `host_threads = 0` sizes
                    // the pool to the machine.
                    host.note("pool.dispatches", p.dispatches());
                    host.note("pool.inline_copies", p.inline_copies());
                    host.time("pool.gather_wait", p.gather_wait_ns());
                    for (stripe, busy) in p.worker_busy_ns().into_iter().enumerate() {
                        host.time_slot("pool.worker_busy", stripe as u32, busy);
                    }
                }
            }
        } else {
            loop {
                if H::ACTIVE {
                    host.count("engine.cycles_executed", 1);
                    let t0 = host.now();
                    mem.tick();
                    host.time("mem.tick", host.now() - t0);
                } else {
                    mem.tick();
                }
                sb.begin_cycle();
                if let Some(m) = mutator.as_mut() {
                    m.tick(heap, &mut sb, &mut fifo);
                }
                if let Some(p) = policy.as_deref_mut() {
                    for (i, (view, core)) in views.iter_mut().zip(&cores).enumerate() {
                        *view = CoreView {
                            pending_header: core.pending_header(),
                            holds_header: sb.header_lock_of(i),
                            holds_scan: sb.holds_scan(i),
                            holds_free: sb.holds_free(i),
                            busy: sb.is_busy(i),
                        };
                    }
                    let view = ScheduleView {
                        scan: sb.scan(),
                        free: sb.free(),
                        cores: &views,
                    };
                    p.arrange(cycles + 1, &view, &mut order);
                }
                let mut any_progress = false;
                for &idx in &order {
                    let scan_before = if P::ACTIVE { sb.scan() } else { 0 };
                    let core = &mut cores[idx];
                    let mut ctx = Ctx {
                        heap,
                        sb: &mut sb,
                        mem: &mut mem,
                        fifo: &mut fifo,
                        done: &mut done,
                        counters: &mut counters,
                        test_before_lock: cfg.test_before_lock,
                        line_split: cfg.line_split,
                    };
                    let outcome = core.tick(&mut ctx);
                    outcomes[idx] = outcome;
                    any_progress |= outcome == TickOutcome::Progress;
                    if P::ACTIVE {
                        // Stall-run bookkeeping: a stalled tick extends the
                        // open run (stamped `cycles + 1`, like every stall
                        // this tick records); progress or parking closes it.
                        let run = &mut stall_runs[idx];
                        if let TickOutcome::Stalled(reason) = outcome {
                            match run {
                                Some((r, _, len)) if *r == reason => *len += 1,
                                _ => {
                                    flush_stall_run(probe, idx, run);
                                    *run = Some((reason, cycles + 1, 1));
                                }
                            }
                        } else {
                            flush_stall_run(probe, idx, run);
                        }
                        // Transition events are stamped with the cycle the
                        // tick completes (`cycles` increments just below).
                        let state = cores[idx].state().index();
                        if prev_states[idx] != state {
                            prev_states[idx] = state;
                            probe.record(
                                cycles + 1,
                                &Event::CoreState {
                                    core: idx as u32,
                                    state,
                                    name: State::name_of(state),
                                },
                            );
                        }
                        let scan_after = sb.scan();
                        if scan_after != scan_before {
                            probe.record(
                                cycles + 1,
                                &Event::WorklistClaim {
                                    core: idx as u32,
                                    from: scan_before,
                                    to: scan_after,
                                },
                            );
                        }
                    }
                }
                cycles += 1;
                if sb.scan() == sb.free() {
                    stats.empty_worklist_cycles += 1;
                }
                if P::ACTIVE {
                    let fifo_len = fifo.len() as u32;
                    if fifo_len != prev_fifo_len {
                        prev_fifo_len = fifo_len;
                        probe.record(cycles, &Event::FifoDepth { depth: fifo_len });
                    }
                    if probe.next_sample(cycles) == Some(cycles) {
                        probe.record(
                            cycles,
                            &Event::Sample(SampleRec {
                                scan: sb.scan(),
                                free: sb.free(),
                                gray_words: sb.free() - sb.scan(),
                                busy_cores: sb.busy_count() as u32,
                                fifo_len,
                                queue_depth: mem.queue_len() as u32,
                                states: &prev_states,
                                state_name: State::name_of,
                            }),
                        );
                    }
                }
                if cores.iter().all(|c| c.state() == State::Done) && mem.all_idle() {
                    break;
                }
                assert!(
                cycles < cfg.max_cycles,
                "simulation exceeded {} cycles; oldest in-flight txn age {:?}; core states {:?}",
                cfg.max_cycles,
                mem.oldest_inflight_age(),
                cores.iter().map(|c| c.state()).collect::<Vec<_>>()
            );
                // --- event-horizon fast-forward ----------------------------
                // Every core just stalled (or is parked): with frozen SB
                // registers, FIFO and heap, the coming cycles replay
                // identically until memory changes something a core can see.
                // Two flavors of skip alternate until the next core-visible
                // event:
                //  * horizon jump — nothing in the memory system moves until
                //    the earliest in-service completion; jump there in one
                //    step, replicating the skipped per-cycle statistics in
                //    bulk;
                //  * service-start replication — a queued request enters DRAM
                //    service next tick, which no core can observe; run
                //    `mem.tick()` for real and replay the cores' stalled
                //    cycle without ticking them.
                // The second bridges the one-cycle gap between "request
                // queued" and "request in service" that would otherwise cost
                // a full n-core tick in every stall window.
                if ff_enabled && !any_progress {
                    // Each failed lock attempt emits a cycle-stamped event;
                    // those cannot be replicated outside `core.tick()`.
                    let events_pinned = sb.event_log_enabled()
                        && outcomes.iter().any(|o| {
                            matches!(
                                o,
                                TickOutcome::Stalled(
                                    StallReason::ScanLock
                                        | StallReason::FreeLock
                                        | StallReason::HeaderLock
                                )
                            )
                        });
                    loop {
                        if let Some(done_at) = mem.next_event_cycle() {
                            // `mem`'s clock equals `cycles` here (aligned
                            // after the root phase, ticked in lock step).
                            let mut k = (done_at - 1).saturating_sub(mem.cycle());
                            if P::ACTIVE {
                                // Do not skip over a cycle the probe wants
                                // sampled.
                                if let Some(ns) = probe.next_sample(cycles + 1) {
                                    k = k.min(ns.saturating_sub(cycles + 1));
                                }
                            }
                            if events_pinned {
                                k = 0;
                            }
                            // Run out of cycles exactly where the naive loop
                            // would panic.
                            k = k.min(cfg.max_cycles - 1 - cycles);
                            if k > 0 {
                                if H::ACTIVE {
                                    host.count("engine.ff.horizon_jumps", 1);
                                    host.count("engine.ff.horizon_cycles", k);
                                }
                                cycles += k;
                                sb.fast_forward(k);
                                mem.fast_forward(k);
                                if sb.scan() == sb.free() {
                                    stats.empty_worklist_cycles += k;
                                }
                                for (i, (core, outcome)) in
                                    cores.iter_mut().zip(&outcomes).enumerate()
                                {
                                    if let TickOutcome::Stalled(reason) = *outcome {
                                        core.stalls.record_n(reason, k);
                                        if P::ACTIVE {
                                            // The tick that opened this window
                                            // left a matching run open; the
                                            // jump extends it by `k` without
                                            // emitting (the span closes when
                                            // the stall resolves).
                                            match &mut stall_runs[i] {
                                                Some((r, _, len)) if *r == reason => *len += k,
                                                run => {
                                                    flush_stall_run(probe, i, run);
                                                    *run = Some((reason, cycles - k + 1, k));
                                                }
                                            }
                                        }
                                        match reason {
                                            StallReason::ScanLock => {
                                                sb.bulk_fail(LockKind::Scan, k)
                                            }
                                            StallReason::FreeLock => {
                                                sb.bulk_fail(LockKind::Free, k)
                                            }
                                            StallReason::HeaderLock => {
                                                sb.bulk_fail(LockKind::Header, k)
                                            }
                                            _ => {}
                                        }
                                    }
                                }
                            }
                            break;
                        }
                        if events_pinned
                            || cycles + 1 >= cfg.max_cycles
                            || !mem.next_tick_starts_service_only()
                        {
                            break;
                        }
                        // Replicate one cycle bit for bit: the real memory
                        // tick (it only starts DRAM services, which no core
                        // observes), the cores' unchanged stall outcomes, and
                        // the loop epilogue.
                        if H::ACTIVE {
                            host.count("engine.ff.service_replays", 1);
                            let t0 = host.now();
                            mem.tick();
                            host.time("mem.tick", host.now() - t0);
                        } else {
                            mem.tick();
                        }
                        sb.begin_cycle();
                        for (i, (core, outcome)) in cores.iter_mut().zip(&outcomes).enumerate() {
                            if let TickOutcome::Stalled(reason) = *outcome {
                                core.stalls.record_n(reason, 1);
                                if P::ACTIVE {
                                    // Extend the open stall run exactly as a
                                    // naive iteration would have.
                                    match &mut stall_runs[i] {
                                        Some((r, _, len)) if *r == reason => *len += 1,
                                        run => {
                                            flush_stall_run(probe, i, run);
                                            *run = Some((reason, cycles + 1, 1));
                                        }
                                    }
                                }
                                match reason {
                                    StallReason::ScanLock => sb.bulk_fail(LockKind::Scan, 1),
                                    StallReason::FreeLock => sb.bulk_fail(LockKind::Free, 1),
                                    StallReason::HeaderLock => sb.bulk_fail(LockKind::Header, 1),
                                    _ => {}
                                }
                            }
                        }
                        cycles += 1;
                        if sb.scan() == sb.free() {
                            stats.empty_worklist_cycles += 1;
                        }
                        if P::ACTIVE {
                            // The replicated cycle is transition-free for the
                            // cores, the FIFO and the SB registers, so only a
                            // wanted sample can be due.
                            if probe.next_sample(cycles) == Some(cycles) {
                                probe.record(
                                    cycles,
                                    &Event::Sample(SampleRec {
                                        scan: sb.scan(),
                                        free: sb.free(),
                                        gray_words: sb.free() - sb.scan(),
                                        busy_cores: sb.busy_count() as u32,
                                        fifo_len: fifo.len() as u32,
                                        queue_depth: mem.queue_len() as u32,
                                        states: &prev_states,
                                        state_name: State::name_of,
                                    }),
                                );
                            }
                        }
                        // The queue may now have drained into service, opening
                        // a horizon jump on the next pass.
                    }
                }
            }
        }

        if H::ACTIVE {
            let t = host.now();
            host.time("phase.steady", t - host_steady_start);
            host.span("phase.steady", host_steady_start, t);
        }

        debug_assert!(
            fifo.is_empty(),
            "gray headers left in the FIFO after termination"
        );
        sb.assert_quiescent();

        if P::ACTIVE {
            // Any run still open at termination (the final tick of a core
            // can stall and then the loop exits on another core's
            // progress) flushes here, so span sums stay exact.
            for (i, run) in stall_runs.iter_mut().enumerate() {
                flush_stall_run(probe, i, run);
            }
            probe.record(
                cycles,
                &Event::Phase {
                    name: "scan",
                    begin: false,
                },
            );
            // Bridge the hardware units' complete operation logs onto the
            // bus. Their stamps are already on the engine clock (both
            // units were aligned after the root phase and tick in lock
            // step), so exporters see one unified timeline.
            if sb.event_log_enabled() {
                for rec in sb.take_event_log() {
                    probe.record(rec.cycle, &Event::Sb(rec));
                }
            }
            if mem.event_log_enabled() {
                for rec in mem.take_event_log() {
                    probe.record(rec.cycle, &Event::Mem(rec));
                }
            }
        }

        let free = sb.free();
        heap.set_alloc_ptr(free);
        if let Some(m) = &mutator {
            // Everything in the register file stays live, as do mid-cycle
            // allocations (which may only be referenced by a register).
            for &r in m.regs.iter().chain(m.allocated.iter()) {
                if r != NULL {
                    heap.add_root(r);
                }
            }
        }

        stats.total_cycles = cycles;
        stats.per_core = cores.iter().map(|c| c.stalls).collect();
        for c in &cores {
            stats.stall.merge(&c.stalls);
        }
        stats.objects_copied = counters.objects_copied;
        stats.words_copied = counters.words_copied;
        stats.pointers_visited = counters.pointers_visited;
        stats.chunks_claimed = counters.chunks_claimed;
        stats.fifo = fifo.stats();
        // The memory system and SB are drained; move their stats out
        // instead of cloning.
        stats.mem = mem.into_stats();
        stats.sync = sb.into_stats();
        (free, stats, mutator.map(|m| m.stats))
    }

    /// Core 1 evacuates every object referenced by the root set and
    /// redirects the roots (paper Section V-E: it reads the main
    /// processor's registers and flushes its caches). The phase is
    /// inherently sequential; its cycle cost is charged before the
    /// parallel loop starts. Per root: one header read (`latency + 1`
    /// cycles — no FIFO or pipelining helps here) plus, for unmarked
    /// targets, the evacuation register/store work.
    fn root_phase(
        &self,
        heap: &mut Heap,
        sb: &mut SyncBlock,
        fifo: &mut HeaderFifo,
        counters: &mut WorkCounters,
        stats: &mut GcStats,
        read_latency: u32,
    ) {
        let mut cycles: u64 = 0;
        let read_cost = read_latency as u64 + 1;
        for i in 0..heap.roots().len() {
            // Each root takes several cycles; the register write ports
            // re-arm accordingly. Keep the SB clock on the *engine*
            // cycle count (each root charges `read_cost`-plus cycles,
            // not one) so root-phase event stamps live on the same
            // timeline as everything after — the trace lint and the
            // exporters rely on one clock.
            sb.set_cycle(cycles);
            sb.begin_cycle();
            let r = heap.roots()[i];
            stats.roots_processed += 1;
            if r == NULL {
                cycles += 1;
                continue;
            }
            debug_assert!(heap.in_fromspace(r), "root {r} not in fromspace");
            cycles += read_cost;
            let h = heap.header(r);
            let fwd = if h.marked {
                h.link
            } else {
                let dst = sb.free();
                let size = h.size_words();
                assert!(dst + size <= heap.to_limit(), "tospace overflow");
                // Advance free through the lock for stats consistency.
                assert!(sb.try_acquire_free(0));
                sb.set_free(0, dst + size);
                sb.release_free(0);
                heap.set_header(dst, Header::gray(h.pi, h.delta, r));
                heap.set_header(r, Header::forwarded(h.pi, h.delta, dst));
                let (w0, w1) = Header::gray(h.pi, h.delta, r).encode();
                if !fifo.push(dst, w0, w1) {
                    // Gray header must go through memory: charge the store.
                    cycles += read_latency as u64;
                }
                counters.objects_copied += 1;
                counters.words_copied += size as u64;
                cycles += 2; // fromspace header store issue + register work
                dst
            };
            heap.set_root(i, fwd);
        }
        stats.root_phase_cycles = cycles;
        // Until the first evacuation the work list is empty; count those
        // cycles for Table I. After the first evacuation scan < free for
        // the rest of the phase.
        if counters.objects_copied == 0 {
            stats.empty_worklist_cycles += cycles;
        } else {
            stats.empty_worklist_cycles += read_cost.min(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqCheney;
    use hwgc_heap::{verify_collection, GraphBuilder, Snapshot};

    fn diamond(semi: u32) -> Heap {
        let mut heap = Heap::new(semi);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let l = b.add(1, 2).unwrap();
        let rr = b.add(1, 2).unwrap();
        let bot = b.add(0, 4).unwrap();
        let dead = b.add(1, 8).unwrap();
        b.link(r, 0, l);
        b.link(r, 1, rr);
        b.link(l, 0, bot);
        b.link(rr, 0, bot);
        b.link(dead, 0, bot);
        b.root(r);
        heap
    }

    #[test]
    fn one_core_collects_diamond() {
        let mut heap = diamond(500);
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(1)).collect(&mut heap);
        assert_eq!(out.stats.objects_copied, 4);
        verify_collection(&heap, out.free, &snap).unwrap();
        assert!(out.stats.total_cycles > 0);
    }

    #[test]
    fn multi_core_collects_diamond() {
        for n in [2, 3, 4, 8, 16] {
            let mut heap = diamond(500);
            let snap = Snapshot::capture(&heap);
            let out = SimCollector::new(GcConfig::with_cores(n)).collect(&mut heap);
            assert_eq!(out.stats.objects_copied, 4, "{n} cores");
            verify_collection(&heap, out.free, &snap).unwrap();
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let mut h1 = diamond(500);
        let mut h2 = diamond(500);
        let seq = SeqCheney::new().collect(&mut h1);
        let sim = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h2);
        assert_eq!(seq.objects_copied, sim.stats.objects_copied);
        assert_eq!(seq.words_copied, sim.stats.words_copied);
        assert_eq!(seq.free, sim.free);
    }

    #[test]
    fn deterministic_cycle_counts() {
        let run = || {
            let mut heap = diamond(500);
            SimCollector::new(GcConfig::with_cores(4))
                .collect(&mut heap)
                .stats
                .total_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_roots_terminate_immediately() {
        let mut heap = Heap::new(100);
        let out = SimCollector::new(GcConfig::with_cores(8)).collect(&mut heap);
        assert_eq!(out.stats.objects_copied, 0);
        assert_eq!(out.free, heap.to_base());
        assert!(out.stats.total_cycles < 100);
    }

    #[test]
    fn test_before_lock_is_functionally_equivalent() {
        let mut h1 = diamond(500);
        let mut h2 = diamond(500);
        let snap = Snapshot::capture(&h1);
        let a = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);
        let cfg = GcConfig {
            test_before_lock: true,
            ..GcConfig::with_cores(4)
        };
        let b = SimCollector::new(cfg).collect(&mut h2);
        verify_collection(&h1, a.free, &snap).unwrap();
        verify_collection(&h2, b.free, &snap).unwrap();
        assert_eq!(a.stats.objects_copied, b.stats.objects_copied);
    }

    #[test]
    fn back_to_back_sim_cycles() {
        let mut heap = diamond(500);
        let snap1 = Snapshot::capture(&heap);
        let out1 = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out1.free, &snap1).unwrap();
        let snap2 = Snapshot::capture(&heap);
        let out2 = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out2.free, &snap2).unwrap();
        assert_eq!(out1.stats.words_copied, out2.stats.words_copied);
    }

    #[test]
    fn null_roots_are_preserved() {
        let mut heap = Heap::new(200);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(0, 1).unwrap();
        b.root(r);
        heap.add_root(NULL);
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out.free, &snap).unwrap();
        assert_eq!(heap.roots()[1], NULL);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let mut heap = diamond(500);
        let out = SimCollector::new(GcConfig::with_cores(4)).collect(&mut heap);
        let s = &out.stats;
        assert_eq!(s.per_core.len(), 4);
        assert!(s.empty_worklist_cycles <= s.total_cycles);
        // Per-core stalls can never exceed total cycles.
        for pc in &s.per_core {
            assert!(pc.total_stalls() + pc.empty_spin + pc.drain <= s.total_cycles);
        }
    }

    #[test]
    fn scheduled_collection_matches_static_functionally() {
        use crate::schedule::{Adversarial, RandomOrder, SchedulePolicy};
        let mut h0 = diamond(500);
        let snap = Snapshot::capture(&h0);
        let base = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h0);
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let policies: [Box<dyn SchedulePolicy>; 2] = [
                Box::new(RandomOrder::new(seed)),
                Box::new(Adversarial::new(seed)),
            ];
            for mut p in policies {
                let mut heap = diamond(500);
                let out = SimCollector::new(GcConfig::with_cores(4))
                    .collect_scheduled(&mut heap, p.as_mut());
                assert_eq!(
                    out.stats.objects_copied,
                    base.stats.objects_copied,
                    "{}",
                    p.name()
                );
                assert_eq!(
                    out.stats.words_copied,
                    base.stats.words_copied,
                    "{}",
                    p.name()
                );
                assert_eq!(out.free, base.free, "{}", p.name());
                verify_collection(&heap, out.free, &snap).unwrap();
            }
        }
    }

    #[test]
    fn random_policy_matches_tick_permutation_seed() {
        // The legacy knob and the RandomOrder policy are the same arbiter:
        // identical seeds must reproduce identical cycle counts.
        let seed = 7u64;
        let mut h1 = diamond(500);
        let legacy_cfg = GcConfig {
            tick_permutation_seed: Some(seed),
            ..GcConfig::with_cores(4)
        };
        let legacy = SimCollector::new(legacy_cfg).collect(&mut h1);
        let mut h2 = diamond(500);
        let mut policy = crate::schedule::RandomOrder::new(seed);
        let scheduled =
            SimCollector::new(GcConfig::with_cores(4)).collect_scheduled(&mut h2, &mut policy);
        assert_eq!(legacy.stats.total_cycles, scheduled.stats.total_cycles);
        assert_eq!(legacy.free, scheduled.free);
    }

    #[test]
    fn event_trace_captures_full_sb_log() {
        use hwgc_sync::SbEvent;
        let mut heap = diamond(500);
        let mut trace = crate::trace::SignalTrace::with_events(1);
        let out = SimCollector::new(GcConfig::with_cores(4)).collect_traced(&mut heap, &mut trace);
        let events = trace.events();
        assert!(!events.is_empty());
        // Stamps are monotone and never exceed the final cycle count.
        let mut prev = 0;
        for rec in events {
            assert!(rec.cycle >= prev, "stamps must be monotone");
            prev = rec.cycle;
            assert!(rec.cycle <= out.stats.total_cycles);
        }
        // Exactly one core announces termination, and it is the last word.
        let terms: Vec<_> = events
            .iter()
            .filter(|r| matches!(r.event, SbEvent::Termination { .. }))
            .collect();
        assert_eq!(terms.len(), 1);
        assert!(matches!(
            events.last().unwrap().event,
            SbEvent::Termination { .. }
        ));
        // Every evacuated object shows up as exactly one header lock.
        let locks = events
            .iter()
            .filter(|r| matches!(r.event, SbEvent::LockHeader { .. }))
            .count() as u64;
        assert!(locks >= out.stats.objects_copied.saturating_sub(1));
    }

    #[test]
    fn fast_forward_is_bit_exact_under_high_latency() {
        // The Figure 6 regime (+20 cycles on every access) maximizes dead
        // cycles — exactly where fast-forward pays off and where any
        // replication error in stall/stat accounting would surface.
        use hwgc_memsim::MemConfig;
        for cores in [1, 2, 4, 16] {
            // Pin the sparse engine off: this differential isolates the
            // PR 2 fast-forward against the naive loop (the sparse engine
            // has its own differentials below).
            let cfg = GcConfig {
                mem: MemConfig::default().with_extra_latency(20),
                sparse: false,
                ..GcConfig::with_cores(cores)
            };
            let mut h1 = diamond(500);
            let fast = SimCollector::new(cfg).collect(&mut h1);
            let mut h2 = diamond(500);
            let naive_cfg = GcConfig {
                fast_forward: false,
                ..cfg
            };
            let naive = SimCollector::new(naive_cfg).collect(&mut h2);
            assert_eq!(fast.stats, naive.stats, "{cores} cores");
            assert_eq!(fast.free, naive.free, "{cores} cores");
        }
    }

    #[test]
    fn fast_forward_preserves_trace_rows_and_events() {
        use hwgc_memsim::MemConfig;
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            sparse: false,
            ..GcConfig::with_cores(4)
        };
        // Sparse sampling leaves room to skip between samples; the rows
        // and the complete SB event log must still be identical.
        for sample_every in [1u64, 7, 1 << 40] {
            let mut h1 = diamond(500);
            let mut t1 = crate::trace::SignalTrace::with_events(sample_every);
            let fast = SimCollector::new(cfg).collect_traced(&mut h1, &mut t1);
            let mut h2 = diamond(500);
            let mut t2 = crate::trace::SignalTrace::with_events(sample_every);
            let naive = SimCollector::new(GcConfig {
                fast_forward: false,
                ..cfg
            })
            .collect_traced(&mut h2, &mut t2);
            assert_eq!(fast.stats, naive.stats, "sample_every {sample_every}");
            assert_eq!(t1.rows(), t2.rows(), "sample_every {sample_every}");
            assert_eq!(t1.events(), t2.events(), "sample_every {sample_every}");
        }
    }

    #[test]
    fn multiport_sb_is_functionally_identical_and_no_slower() {
        use hwgc_memsim::MemConfig;
        let base = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::with_cores(8)
        };
        let mut h1 = diamond(500);
        let a = SimCollector::new(base).collect(&mut h1);
        let mut h2 = diamond(500);
        let b = SimCollector::new(GcConfig {
            multiport_sb: true,
            ..base
        })
        .collect(&mut h2);
        // The relaxation removes only write-port conflicts: the heap
        // outcome is identical and the run cannot get slower.
        assert_eq!(a.free, b.free);
        assert_eq!(a.stats.objects_copied, b.stats.objects_copied);
        assert_eq!(a.stats.words_copied, b.stats.words_copied);
        assert!(b.stats.total_cycles <= a.stats.total_cycles);
        assert!(b.stats.stall.scan_lock <= a.stats.stall.scan_lock);
        assert!(b.stats.stall.free_lock <= a.stats.stall.free_lock);
    }

    #[test]
    fn stall_spans_reconcile_with_breakdown_and_survive_fast_forward() {
        use hwgc_memsim::MemConfig;
        use hwgc_obs::{OwnedEvent, Recorder, Recording};
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            sparse: false,
            ..GcConfig::with_cores(4)
        };
        let run = |cfg: GcConfig| {
            let mut heap = diamond(500);
            let mut rec = Recorder::new();
            let out = SimCollector::new(cfg).collect_probed(&mut heap, &mut rec);
            (out.stats, rec.into_recording())
        };
        let spans = |rec: &Recording| -> Vec<(u64, u32, u8, u64, u64)> {
            rec.events
                .iter()
                .filter_map(|&(c, ref e)| match *e {
                    OwnedEvent::StallSpan {
                        core,
                        reason,
                        since,
                        len,
                        ..
                    } => Some((c, core, reason, since, len)),
                    _ => None,
                })
                .collect()
        };
        let (stats, rec_ff) = run(cfg);
        let (stats_naive, rec_naive) = run(GcConfig {
            fast_forward: false,
            ..cfg
        });
        assert_eq!(stats, stats_naive);
        // Fast-forward replicates the exact spans of the naive loop.
        assert_eq!(spans(&rec_ff), spans(&rec_naive));
        // Conservative completeness: per (core, reason) span lengths sum
        // exactly to the per-core stall counters, and each span is
        // stamped with its last stalled cycle.
        let mut sums = vec![[0u64; StallReason::COUNT]; stats.per_core.len()];
        for (stamp, core, reason, since, len) in spans(&rec_ff) {
            assert!(len > 0);
            assert_eq!(stamp, since + len - 1);
            sums[core as usize][reason as usize] += len;
        }
        assert!(sums.iter().flatten().any(|&n| n > 0));
        for (core, breakdown) in stats.per_core.iter().enumerate() {
            for reason in StallReason::ALL {
                assert_eq!(
                    sums[core][reason.index() as usize],
                    breakdown.get(reason),
                    "core {core} {}",
                    reason.name()
                );
            }
        }
    }

    #[test]
    fn sparse_is_bit_exact_across_cores_and_latency() {
        // The sparse active-set loop must replicate the naive loop's
        // stats exactly in both the contended low-latency regime (parks
        // are mostly lock waits) and the Figure 6 regime (+20 cycles per
        // access, parks are mostly memory waits). `sparse: true` is
        // explicit so the differential survives `HWGC_SPARSE=0` in CI.
        use hwgc_memsim::MemConfig;
        for extra in [0u32, 20] {
            for cores in [1, 2, 4, 16] {
                let cfg = GcConfig {
                    mem: MemConfig::default().with_extra_latency(extra),
                    // Pinned: the unpinned 1-core default auto-selects
                    // the naive loop, degrading this leg to naive-vs-naive.
                    engine: Some(EngineKind::Sparse),
                    sparse: true,
                    ..GcConfig::with_cores(cores)
                };
                let mut h1 = diamond(500);
                let sparse = SimCollector::new(cfg).collect(&mut h1);
                let mut h2 = diamond(500);
                let naive = SimCollector::new(GcConfig {
                    engine: Some(EngineKind::Naive),
                    sparse: false,
                    fast_forward: false,
                    ..cfg
                })
                .collect(&mut h2);
                assert_eq!(sparse.stats, naive.stats, "{cores} cores +{extra}");
                assert_eq!(sparse.free, naive.free, "{cores} cores +{extra}");
            }
        }
    }

    #[test]
    fn sparse_preserves_trace_rows_and_events() {
        // `with_events` turns the SB event log on, which forbids parking
        // the lock classes (each per-cycle fail logs an event): the rows,
        // the complete SB event log, and the stats must all be identical
        // at every sampling stride.
        use hwgc_memsim::MemConfig;
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            sparse: true,
            ..GcConfig::with_cores(4)
        };
        for sample_every in [1u64, 7, 1 << 40] {
            let mut h1 = diamond(500);
            let mut t1 = crate::trace::SignalTrace::with_events(sample_every);
            let sparse = SimCollector::new(cfg).collect_traced(&mut h1, &mut t1);
            let mut h2 = diamond(500);
            let mut t2 = crate::trace::SignalTrace::with_events(sample_every);
            let naive = SimCollector::new(GcConfig {
                sparse: false,
                fast_forward: false,
                ..cfg
            })
            .collect_traced(&mut h2, &mut t2);
            assert_eq!(sparse.stats, naive.stats, "sample_every {sample_every}");
            assert_eq!(t1.rows(), t2.rows(), "sample_every {sample_every}");
            assert_eq!(t1.events(), t2.events(), "sample_every {sample_every}");
        }
    }

    #[test]
    fn sparse_is_bit_exact_under_schedule_policies() {
        // Unlike the PR 2 fast-forward (which a policy suppresses), the
        // sparse engine composes with `SchedulePolicy`: policies reorder
        // only runnable cores, and the per-cycle `arrange` stream is
        // replayed through jumps, so the whole run — cycle counts and
        // stall attribution included — is identical to the naive loop.
        use crate::schedule::{Adversarial, RandomOrder, SchedulePolicy};
        use hwgc_memsim::MemConfig;
        for extra in [0u32, 20] {
            let cfg = GcConfig {
                mem: MemConfig::default().with_extra_latency(extra),
                sparse: true,
                ..GcConfig::with_cores(4)
            };
            for seed in [1u64, 42, 0xDEAD_BEEF] {
                let make: [fn(u64) -> Box<dyn SchedulePolicy>; 2] = [
                    |s| Box::new(RandomOrder::new(s)),
                    |s| Box::new(Adversarial::new(s)),
                ];
                for mk in make {
                    let mut p1 = mk(seed);
                    let mut h1 = diamond(500);
                    let sparse = SimCollector::new(cfg).collect_scheduled(&mut h1, p1.as_mut());
                    let mut p2 = mk(seed);
                    let mut h2 = diamond(500);
                    let naive = SimCollector::new(GcConfig {
                        sparse: false,
                        ..cfg
                    })
                    .collect_scheduled(&mut h2, p2.as_mut());
                    assert_eq!(
                        sparse.stats,
                        naive.stats,
                        "{} seed {seed} +{extra}",
                        p1.name()
                    );
                    assert_eq!(sparse.free, naive.free, "{} seed {seed}", p1.name());
                }
            }
        }
    }

    #[test]
    fn sparse_preserves_probe_streams() {
        // The full probe-bus recording — stall spans, core-state edges,
        // worklist claims, FIFO depths, samples, SB events — must be
        // bit-identical, with both a sampling recorder (forces jump
        // landings on sample cycles) and a transition-only one.
        use hwgc_memsim::MemConfig;
        use hwgc_obs::Recorder;
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            sparse: true,
            ..GcConfig::with_cores(4)
        };
        for sample in [Some(8u64), None] {
            let mk = || match sample {
                Some(n) => Recorder::sampling(n),
                None => Recorder::new(),
            };
            let mut r1 = mk();
            let mut h1 = diamond(500);
            let sparse = SimCollector::new(cfg).collect_probed(&mut h1, &mut r1);
            let mut r2 = mk();
            let mut h2 = diamond(500);
            let naive = SimCollector::new(GcConfig {
                sparse: false,
                fast_forward: false,
                ..cfg
            })
            .collect_probed(&mut h2, &mut r2);
            assert_eq!(sparse.stats, naive.stats, "sample {sample:?}");
            assert_eq!(
                r1.recording().events,
                r2.recording().events,
                "sample {sample:?}"
            );
        }
    }

    #[test]
    fn probe_on_and_probe_off_report_identical_stats() {
        use hwgc_memsim::MemConfig;
        use hwgc_obs::Recorder;
        for (cores, extra) in [(1, 0), (4, 0), (4, 20), (16, 20)] {
            let cfg = GcConfig {
                mem: MemConfig::default().with_extra_latency(extra),
                ..GcConfig::with_cores(cores)
            };
            let mut h1 = diamond(500);
            let plain = SimCollector::new(cfg).collect(&mut h1);
            // A sampling recorder (caps fast-forward at sample cycles)
            // and a transition-only one (fast-forward runs free) must
            // both observe without perturbing.
            let mut sampled = Recorder::sampling(8);
            let mut h2 = diamond(500);
            let a = SimCollector::new(cfg).collect_probed(&mut h2, &mut sampled);
            let mut unsampled = Recorder::new();
            let mut h3 = diamond(500);
            let b = SimCollector::new(cfg).collect_probed(&mut h3, &mut unsampled);
            assert_eq!(plain.stats, a.stats, "{cores} cores +{extra} (sampled)");
            assert_eq!(plain.stats, b.stats, "{cores} cores +{extra} (unsampled)");
            assert_eq!(plain.free, a.free);
            assert_eq!(plain.free, b.free);
            assert!(!sampled.recording().is_empty());
            assert!(!unsampled.recording().is_empty());
        }
    }

    #[test]
    fn recorder_sb_stream_matches_signal_trace_events() {
        // The bus bridges the same SB log `collect_traced` captures: one
        // instrumentation path, two views.
        let mut h1 = diamond(500);
        let mut trace = crate::trace::SignalTrace::with_events(1);
        SimCollector::new(GcConfig::with_cores(4)).collect_traced(&mut h1, &mut trace);
        let mut h2 = diamond(500);
        let mut rec = hwgc_obs::Recorder::new();
        SimCollector::new(GcConfig::with_cores(4)).collect_probed(&mut h2, &mut rec);
        let bus: Vec<_> = rec.recording().sb_events().cloned().collect();
        assert!(!bus.is_empty());
        assert_eq!(bus, trace.events());
    }

    #[test]
    fn root_phase_sb_stamps_follow_the_engine_clock() {
        use hwgc_memsim::MemConfig;
        use hwgc_sync::SbEvent;
        // The Figure 6 regime (+20 cycles per access) stretches each
        // root's cost to `latency + 1`-plus engine cycles. The SB events
        // of consecutive roots must be stamped at least that far apart:
        // the SB clock follows the engine clock through the root phase,
        // not the root index.
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::with_cores(4)
        };
        let read_cost = cfg.mem.latency as u64 + 1;
        let mut heap = Heap::new(4096);
        let mut b = GraphBuilder::new(&mut heap);
        for _ in 0..5 {
            let r = b.add(0, 4).unwrap();
            b.root(r);
        }
        let mut trace = crate::trace::SignalTrace::with_events(1);
        let out = SimCollector::new(cfg).collect_traced(&mut heap, &mut trace);
        // Leaf roots evacuate in the root phase and nowhere else, so the
        // SetFree stamps are exactly the per-root event times.
        let set_free: Vec<u64> = trace
            .events()
            .iter()
            .filter(|r| matches!(r.event, SbEvent::SetFree { .. }))
            .map(|r| r.cycle)
            .collect();
        assert_eq!(set_free.len(), 5);
        for w in set_free.windows(2) {
            assert!(
                w[1] >= w[0] + read_cost,
                "root stamps {} -> {} closer than the {read_cost}-cycle header read",
                w[0],
                w[1]
            );
        }
        assert!(*set_free.last().unwrap() <= out.stats.root_phase_cycles);
    }

    #[test]
    fn figure6_preset_run_keeps_one_clock_with_probes() {
        use hwgc_memsim::MemConfig;
        use hwgc_obs::Recorder;
        use hwgc_workloads::{Preset, WorkloadSpec};
        // A reduced Figure 6 javac point: probes on must not perturb the
        // run, and both bridged unit logs must live on the engine clock —
        // memory events start after the root phase (the memory system is
        // aligned to the engine's cycle count, not its own tick count).
        let spec = WorkloadSpec {
            preset: Preset::Javac,
            seed: 1,
            scale: 0.2,
        };
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::with_cores(4)
        };
        let mut h1 = spec.build();
        let plain = SimCollector::new(cfg).collect(&mut h1);
        let mut h2 = spec.build();
        let mut rec = Recorder::new();
        let probed = SimCollector::new(cfg).collect_probed(&mut h2, &mut rec);
        assert_eq!(plain.stats, probed.stats);
        assert_eq!(plain.free, probed.free);
        let rec = rec.into_recording();
        let mem_stamps: Vec<u64> = rec.mem_events().map(|r| r.cycle).collect();
        assert!(!mem_stamps.is_empty());
        assert!(
            *mem_stamps.first().unwrap() > probed.stats.root_phase_cycles,
            "memory events must be stamped on the engine clock, after the root phase"
        );
        for (stamps, unit) in [
            (&mem_stamps, "mem"),
            (&rec.sb_events().map(|r| r.cycle).collect(), "sb"),
        ] {
            let mut prev = 0;
            for &c in stamps.iter() {
                assert!(c >= prev, "{unit} stamps must be monotone");
                prev = c;
                assert!(c <= probed.stats.total_cycles, "{unit} stamp past the end");
            }
        }
    }

    #[test]
    fn probed_run_emits_phases_transitions_and_claims() {
        use hwgc_obs::{OwnedEvent, Recorder};
        let mut heap = diamond(500);
        let mut rec = Recorder::new();
        let out = SimCollector::new(GcConfig::with_cores(2)).collect_probed(&mut heap, &mut rec);
        let rec = rec.into_recording();
        // Exactly two balanced phases, back to back on the engine clock.
        let phases: Vec<(u64, &str, bool)> = rec
            .events
            .iter()
            .filter_map(|(c, e)| match e {
                OwnedEvent::Phase { name, begin } => Some((*c, *name, *begin)),
                _ => None,
            })
            .collect();
        assert_eq!(
            phases,
            vec![
                (0, "roots", true),
                (out.stats.root_phase_cycles, "roots", false),
                (out.stats.root_phase_cycles, "scan", true),
                (out.stats.total_cycles, "scan", false),
            ]
        );
        // Every core's transition stream starts at Poll and ends at Done.
        for core in 0..2u32 {
            let states: Vec<u8> = rec
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    OwnedEvent::CoreState { core: c, state, .. } if *c == core => Some(*state),
                    _ => None,
                })
                .collect();
            assert_eq!(states.first(), Some(&State::Poll.index()), "core {core}");
            assert_eq!(states.last(), Some(&State::Done.index()), "core {core}");
        }
        // Worklist claims are disjoint, contiguous, and cover the whole
        // evacuated span.
        let claims: Vec<(u32, u32)> = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                OwnedEvent::WorklistClaim { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert!(!claims.is_empty());
        for &(f, t) in &claims {
            assert!(f < t);
        }
        for w in claims.windows(2) {
            assert_eq!(w[1].0, w[0].1, "claims must tile the worklist");
        }
        assert_eq!(claims.last().unwrap().1, out.free);
    }

    #[test]
    fn traced_collection_matches_untraced() {
        let mut h1 = diamond(500);
        let plain = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);
        let mut h2 = diamond(500);
        let mut trace = crate::trace::SignalTrace::new(1);
        let traced = SimCollector::new(GcConfig::with_cores(4)).collect_traced(&mut h2, &mut trace);
        assert_eq!(plain.stats.total_cycles, traced.stats.total_cycles);
        assert_eq!(plain.free, traced.free);
        // One sample per post-root-phase cycle.
        assert_eq!(
            trace.rows().len() as u64,
            traced.stats.total_cycles - traced.stats.root_phase_cycles
        );
        // scan is monotone and gray_words consistent.
        let mut prev = 0;
        for row in trace.rows() {
            assert!(row.scan >= prev);
            prev = row.scan;
            assert_eq!(row.gray_words, row.free - row.scan);
        }
    }
}
