//! The cycle-level simulation engine.
//!
//! The engine owns the synchronization block, the memory system and the N
//! core state machines, and advances them in lock step: each simulated
//! clock cycle, the memory system ticks first (retiring completed
//! transactions and starting new DRAM services), then every core executes
//! one tick **in index order**. Ticking in index order realizes the SB's
//! static prioritization: when several cores contend for a lock in the
//! same cycle, the lowest-indexed requester acquires it; and a lock
//! released by core *i* can be re-acquired by a later-ticking core in the
//! same cycle — both exactly as in the paper's hardware.
//!
//! A collection cycle has three phases, mirroring Section V-E:
//!
//! 1. **Root phase**: core 1 (index 0 here) stops the main processor,
//!    flips the semispaces, initialises `scan` and `free`, and evacuates
//!    the root set sequentially. Other cores wait at the initialization
//!    barrier (modelled by starting the parallel loop afterwards).
//! 2. **Parallel scan loop**: all cores run the microprogram until a core
//!    observes `scan == free` with all busy bits clear.
//! 3. **Drain**: all store buffers flush before the main processor would
//!    be restarted.
//!
//! Three front doors share one loop: [`SimCollector::collect`]
//! (stop-the-world, the paper's configuration),
//! [`SimCollector::collect_concurrent`] (extension 3: the mutator ticks
//! first each cycle, at top SB priority) and
//! [`SimCollector::collect_traced`] (extension 4: per-cycle signal
//! sampling).

use hwgc_heap::header::Header;
use hwgc_heap::{Addr, Heap, NULL};
use hwgc_memsim::{HeaderFifo, MemorySystem};
use hwgc_sync::{LockKind, SyncBlock};

use crate::concurrent::{MutatorConfig, MutatorSm, MutatorStats};
use crate::config::GcConfig;
use crate::machine::{CoreSm, Ctx, State, TickOutcome, WorkCounters};
use crate::schedule::{CoreView, RandomOrder, SchedulePolicy, ScheduleView};
use crate::stats::{GcStats, StallReason};
use crate::trace::{SignalTrace, TraceRow};

/// Result of a simulated collection cycle.
#[derive(Debug, Clone)]
pub struct GcOutcome {
    /// Final allocation frontier in tospace.
    pub free: Addr,
    /// Cycle-accurate statistics.
    pub stats: GcStats,
}

/// Result of a collection cycle that ran concurrently with the mutator.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Final allocation frontier (live data + objects allocated mid-GC).
    pub free: Addr,
    /// Collector statistics.
    pub stats: GcStats,
    /// Mutator progress and barrier statistics.
    pub mutator: MutatorStats,
}

/// The parallel collector on the simulated multi-core GC coprocessor.
#[derive(Debug, Clone, Copy)]
pub struct SimCollector {
    cfg: GcConfig,
}

impl SimCollector {
    /// Collector with the given configuration.
    pub fn new(cfg: GcConfig) -> SimCollector {
        assert!(cfg.n_cores > 0, "need at least one GC core");
        SimCollector { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Run one stop-the-world collection cycle on `heap` (the paper's
    /// configuration: the main processor is stopped throughout).
    pub fn collect(&self, heap: &mut Heap) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, None, None);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle while sampling internal signals into
    /// `trace` (extension 4, the paper's monitoring framework). A trace
    /// built with [`SignalTrace::with_events`] also receives the SB's
    /// complete cycle-stamped operation log.
    pub fn collect_traced(&self, heap: &mut Heap, trace: &mut SignalTrace) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, Some(trace), None);
        GcOutcome { free, stats }
    }

    /// Run one collection cycle with `policy` choosing the per-cycle core
    /// tick order (any legal SB arbiter — see [`crate::schedule`]). The
    /// functional outcome must match [`SimCollector::collect`] for every
    /// policy; only timing and stall attribution may shift.
    pub fn collect_scheduled(&self, heap: &mut Heap, policy: &mut dyn SchedulePolicy) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, None, Some(policy));
        GcOutcome { free, stats }
    }

    /// [`SimCollector::collect_scheduled`] with signal/event tracing —
    /// the full harness configuration used by the `hwgc-check` sweeps.
    pub fn collect_scheduled_traced(
        &self,
        heap: &mut Heap,
        policy: &mut dyn SchedulePolicy,
        trace: &mut SignalTrace,
    ) -> GcOutcome {
        let (free, stats, _) = self.run(heap, None, Some(trace), Some(policy));
        GcOutcome { free, stats }
    }

    /// Extension 3 (paper Section V-B): run the collection cycle while the
    /// main processor keeps executing behind a hardware read barrier. The
    /// mutator ticks *first* each cycle (the main processor has top
    /// priority at the SB) and owns SB slot `n_cores`. Its registers (and
    /// any objects it allocated) are appended to the root set afterwards
    /// so everything it holds stays live. See [`crate::concurrent`].
    pub fn collect_concurrent(
        &self,
        heap: &mut Heap,
        mutator_cfg: &MutatorConfig,
    ) -> ConcurrentOutcome {
        let (free, stats, mutator) = self.run(heap, Some(*mutator_cfg), None, None);
        ConcurrentOutcome {
            free,
            stats,
            mutator: mutator.expect("mutator ran"),
        }
    }

    /// The shared collection loop.
    fn run(
        &self,
        heap: &mut Heap,
        mutator_cfg: Option<MutatorConfig>,
        mut trace: Option<&mut SignalTrace>,
        policy: Option<&mut dyn SchedulePolicy>,
    ) -> (Addr, GcStats, Option<MutatorStats>) {
        let cfg = self.cfg;
        heap.flip();
        // One extra SB slot when the mutator participates (its header/free
        // locking and its busy bit for sound termination detection).
        let sb_slots = cfg.n_cores + usize::from(mutator_cfg.is_some());
        let mut sb = SyncBlock::new(sb_slots);
        if trace.as_ref().is_some_and(|t| t.capture_events()) {
            sb.enable_event_log();
        }
        sb.init_pointers(heap.to_base(), heap.to_base());
        let mut mem = MemorySystem::new(cfg.n_cores, cfg.mem);
        let mut fifo = HeaderFifo::new(cfg.mem.header_fifo_capacity);
        let mut counters = WorkCounters::default();
        let mut stats = GcStats::default();

        // --- Phase 1: sequential root evacuation by core 0 -------------
        self.root_phase(heap, &mut sb, &mut fifo, &mut counters, &mut stats);
        let mut mutator = mutator_cfg.map(|mcfg| MutatorSm::new(mcfg, heap.roots(), cfg.n_cores));

        // --- Phase 2+3: parallel scan loop and drain --------------------
        let mut cores: Vec<CoreSm> = (0..cfg.n_cores).map(CoreSm::new).collect();
        let mut done = false;
        let mut cycles: u64 = stats.root_phase_cycles;
        // Align the SB clock with the engine's cycle numbering (the root
        // phase ticks the SB once per root but costs more cycles), so SB
        // event stamps in the parallel phase equal trace-row cycles.
        sb.set_cycle(cycles);
        let mut order: Vec<usize> = (0..cfg.n_cores).collect();
        // Back-compat: the `tick_permutation_seed` knob is the RandomOrder
        // policy (bit-identical shuffles). An explicit policy wins.
        let mut seeded_fallback = cfg.tick_permutation_seed.map(RandomOrder::new);
        let mut policy: Option<&mut dyn SchedulePolicy> = match policy {
            Some(p) => Some(p),
            None => seeded_fallback
                .as_mut()
                .map(|p| p as &mut dyn SchedulePolicy),
        };
        // Preallocated per-cycle scratch: the steady-state loop must not
        // allocate.
        let mut views: Vec<CoreView> = vec![CoreView::default(); cfg.n_cores];
        let mut outcomes: Vec<TickOutcome> = vec![TickOutcome::Progress; cfg.n_cores];
        // Event-horizon fast-forward is only sound when nothing outside
        // the cores can observe or perturb individual cycles: no mutator
        // (it ticks every cycle) and no schedule policy (stateful
        // arbiters advance their RNG per cycle). Tracing is handled
        // per-jump by capping the skip at the next wanted sample.
        let ff_enabled = cfg.fast_forward && mutator.is_none() && policy.is_none();

        loop {
            mem.tick();
            sb.begin_cycle();
            if let Some(m) = mutator.as_mut() {
                m.tick(heap, &mut sb, &mut fifo);
            }
            if let Some(p) = policy.as_deref_mut() {
                for (i, (view, core)) in views.iter_mut().zip(&cores).enumerate() {
                    *view = CoreView {
                        pending_header: core.pending_header(),
                        holds_header: sb.header_lock_of(i),
                        holds_scan: sb.holds_scan(i),
                        holds_free: sb.holds_free(i),
                        busy: sb.is_busy(i),
                    };
                }
                let view = ScheduleView {
                    scan: sb.scan(),
                    free: sb.free(),
                    cores: &views,
                };
                p.arrange(cycles + 1, &view, &mut order);
            }
            let mut any_progress = false;
            for &idx in &order {
                let core = &mut cores[idx];
                let mut ctx = Ctx {
                    heap,
                    sb: &mut sb,
                    mem: &mut mem,
                    fifo: &mut fifo,
                    done: &mut done,
                    counters: &mut counters,
                    test_before_lock: cfg.test_before_lock,
                    line_split: cfg.line_split,
                };
                let outcome = core.tick(&mut ctx);
                outcomes[idx] = outcome;
                any_progress |= outcome == TickOutcome::Progress;
            }
            cycles += 1;
            if sb.scan() == sb.free() {
                stats.empty_worklist_cycles += 1;
            }
            if let Some(trace) = trace.as_deref_mut() {
                if trace.wants(cycles) {
                    trace.push(TraceRow {
                        cycle: cycles,
                        scan: sb.scan(),
                        free: sb.free(),
                        gray_words: sb.free() - sb.scan(),
                        busy_cores: sb.busy_count() as u32,
                        fifo_len: fifo.len() as u32,
                        queue_depth: mem.queue_len() as u32,
                        core_states: cores.iter().map(|c| c.state()).collect(),
                    });
                }
            }
            if cores.iter().all(|c| c.state() == State::Done) && mem.all_idle() {
                break;
            }
            assert!(
                cycles < cfg.max_cycles,
                "simulation exceeded {} cycles; oldest in-flight txn age {:?}; core states {:?}",
                cfg.max_cycles,
                mem.oldest_inflight_age(),
                cores.iter().map(|c| c.state()).collect::<Vec<_>>()
            );
            // --- event-horizon fast-forward ----------------------------
            // Every core just stalled (or is parked): with frozen SB
            // registers, FIFO and heap, the coming cycles replay
            // identically until memory changes something a core can see.
            // Two flavors of skip alternate until the next core-visible
            // event:
            //  * horizon jump — nothing in the memory system moves until
            //    the earliest in-service completion; jump there in one
            //    step, replicating the skipped per-cycle statistics in
            //    bulk;
            //  * service-start replication — a queued request enters DRAM
            //    service next tick, which no core can observe; run
            //    `mem.tick()` for real and replay the cores' stalled
            //    cycle without ticking them.
            // The second bridges the one-cycle gap between "request
            // queued" and "request in service" that would otherwise cost
            // a full n-core tick in every stall window.
            if ff_enabled && !any_progress {
                // Each failed lock attempt emits a cycle-stamped event;
                // those cannot be replicated outside `core.tick()`.
                let events_pinned = sb.event_log_enabled()
                    && outcomes.iter().any(|o| {
                        matches!(
                            o,
                            TickOutcome::Stalled(
                                StallReason::ScanLock
                                    | StallReason::FreeLock
                                    | StallReason::HeaderLock
                            )
                        )
                    });
                loop {
                    if let Some(done_at) = mem.next_event_cycle() {
                        // `mem`'s clock lags `cycles` by the root-phase
                        // cost.
                        let mut k = (done_at - 1).saturating_sub(mem.cycle());
                        if let Some(t) = trace.as_deref() {
                            // Do not skip over a cycle the trace wants.
                            let next_sample = (cycles / t.sample_every + 1) * t.sample_every;
                            k = k.min(next_sample - 1 - cycles);
                        }
                        if events_pinned {
                            k = 0;
                        }
                        // Run out of cycles exactly where the naive loop
                        // would panic.
                        k = k.min(cfg.max_cycles - 1 - cycles);
                        if k > 0 {
                            cycles += k;
                            sb.fast_forward(k);
                            mem.fast_forward(k);
                            if sb.scan() == sb.free() {
                                stats.empty_worklist_cycles += k;
                            }
                            for (core, outcome) in cores.iter_mut().zip(&outcomes) {
                                if let TickOutcome::Stalled(reason) = *outcome {
                                    core.stalls.record_n(reason, k);
                                    match reason {
                                        StallReason::ScanLock => sb.bulk_fail(LockKind::Scan, k),
                                        StallReason::FreeLock => sb.bulk_fail(LockKind::Free, k),
                                        StallReason::HeaderLock => {
                                            sb.bulk_fail(LockKind::Header, k)
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                        break;
                    }
                    if events_pinned
                        || cycles + 1 >= cfg.max_cycles
                        || !mem.next_tick_starts_service_only()
                    {
                        break;
                    }
                    // Replicate one cycle bit for bit: the real memory
                    // tick (it only starts DRAM services, which no core
                    // observes), the cores' unchanged stall outcomes, and
                    // the loop epilogue.
                    mem.tick();
                    sb.begin_cycle();
                    for (core, outcome) in cores.iter_mut().zip(&outcomes) {
                        if let TickOutcome::Stalled(reason) = *outcome {
                            core.stalls.record_n(reason, 1);
                            match reason {
                                StallReason::ScanLock => sb.bulk_fail(LockKind::Scan, 1),
                                StallReason::FreeLock => sb.bulk_fail(LockKind::Free, 1),
                                StallReason::HeaderLock => sb.bulk_fail(LockKind::Header, 1),
                                _ => {}
                            }
                        }
                    }
                    cycles += 1;
                    if sb.scan() == sb.free() {
                        stats.empty_worklist_cycles += 1;
                    }
                    if let Some(trace) = trace.as_deref_mut() {
                        if trace.wants(cycles) {
                            trace.push(TraceRow {
                                cycle: cycles,
                                scan: sb.scan(),
                                free: sb.free(),
                                gray_words: sb.free() - sb.scan(),
                                busy_cores: sb.busy_count() as u32,
                                fifo_len: fifo.len() as u32,
                                queue_depth: mem.queue_len() as u32,
                                core_states: cores.iter().map(|c| c.state()).collect(),
                            });
                        }
                    }
                    // The queue may now have drained into service, opening
                    // a horizon jump on the next pass.
                }
            }
        }

        debug_assert!(
            fifo.is_empty(),
            "gray headers left in the FIFO after termination"
        );
        sb.assert_quiescent();

        if let Some(trace) = trace {
            if trace.capture_events() {
                trace.set_events(sb.take_event_log());
            }
        }

        let free = sb.free();
        heap.set_alloc_ptr(free);
        if let Some(m) = &mutator {
            // Everything in the register file stays live, as do mid-cycle
            // allocations (which may only be referenced by a register).
            for &r in m.regs.iter().chain(m.allocated.iter()) {
                if r != NULL {
                    heap.add_root(r);
                }
            }
        }

        stats.total_cycles = cycles;
        stats.per_core = cores.iter().map(|c| c.stalls).collect();
        for c in &cores {
            stats.stall.merge(&c.stalls);
        }
        stats.objects_copied = counters.objects_copied;
        stats.words_copied = counters.words_copied;
        stats.pointers_visited = counters.pointers_visited;
        stats.chunks_claimed = counters.chunks_claimed;
        stats.fifo = fifo.stats();
        // The memory system and SB are drained; move their stats out
        // instead of cloning.
        stats.mem = mem.into_stats();
        stats.sync = sb.into_stats();
        (free, stats, mutator.map(|m| m.stats))
    }

    /// Core 1 evacuates every object referenced by the root set and
    /// redirects the roots (paper Section V-E: it reads the main
    /// processor's registers and flushes its caches). The phase is
    /// inherently sequential; its cycle cost is charged before the
    /// parallel loop starts. Per root: one header read (`latency + 1`
    /// cycles — no FIFO or pipelining helps here) plus, for unmarked
    /// targets, the evacuation register/store work.
    fn root_phase(
        &self,
        heap: &mut Heap,
        sb: &mut SyncBlock,
        fifo: &mut HeaderFifo,
        counters: &mut WorkCounters,
        stats: &mut GcStats,
    ) {
        let mut cycles: u64 = 0;
        let read_cost = self.cfg.mem.latency as u64 + 1;
        for i in 0..heap.roots().len() {
            // Each root takes several cycles; the register write ports
            // re-arm accordingly.
            sb.begin_cycle();
            let r = heap.roots()[i];
            stats.roots_processed += 1;
            if r == NULL {
                cycles += 1;
                continue;
            }
            debug_assert!(heap.in_fromspace(r), "root {r} not in fromspace");
            cycles += read_cost;
            let h = heap.header(r);
            let fwd = if h.marked {
                h.link
            } else {
                let dst = sb.free();
                let size = h.size_words();
                assert!(dst + size <= heap.to_limit(), "tospace overflow");
                // Advance free through the lock for stats consistency.
                assert!(sb.try_acquire_free(0));
                sb.set_free(0, dst + size);
                sb.release_free(0);
                heap.set_header(dst, Header::gray(h.pi, h.delta, r));
                heap.set_header(r, Header::forwarded(h.pi, h.delta, dst));
                let (w0, w1) = Header::gray(h.pi, h.delta, r).encode();
                if !fifo.push(dst, w0, w1) {
                    // Gray header must go through memory: charge the store.
                    cycles += self.cfg.mem.latency as u64;
                }
                counters.objects_copied += 1;
                counters.words_copied += size as u64;
                cycles += 2; // fromspace header store issue + register work
                dst
            };
            heap.set_root(i, fwd);
        }
        stats.root_phase_cycles = cycles;
        // Until the first evacuation the work list is empty; count those
        // cycles for Table I. After the first evacuation scan < free for
        // the rest of the phase.
        if counters.objects_copied == 0 {
            stats.empty_worklist_cycles += cycles;
        } else {
            stats.empty_worklist_cycles += read_cost.min(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqCheney;
    use hwgc_heap::{verify_collection, GraphBuilder, Snapshot};

    fn diamond(semi: u32) -> Heap {
        let mut heap = Heap::new(semi);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let l = b.add(1, 2).unwrap();
        let rr = b.add(1, 2).unwrap();
        let bot = b.add(0, 4).unwrap();
        let dead = b.add(1, 8).unwrap();
        b.link(r, 0, l);
        b.link(r, 1, rr);
        b.link(l, 0, bot);
        b.link(rr, 0, bot);
        b.link(dead, 0, bot);
        b.root(r);
        heap
    }

    #[test]
    fn one_core_collects_diamond() {
        let mut heap = diamond(500);
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(1)).collect(&mut heap);
        assert_eq!(out.stats.objects_copied, 4);
        verify_collection(&heap, out.free, &snap).unwrap();
        assert!(out.stats.total_cycles > 0);
    }

    #[test]
    fn multi_core_collects_diamond() {
        for n in [2, 3, 4, 8, 16] {
            let mut heap = diamond(500);
            let snap = Snapshot::capture(&heap);
            let out = SimCollector::new(GcConfig::with_cores(n)).collect(&mut heap);
            assert_eq!(out.stats.objects_copied, 4, "{n} cores");
            verify_collection(&heap, out.free, &snap).unwrap();
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let mut h1 = diamond(500);
        let mut h2 = diamond(500);
        let seq = SeqCheney::new().collect(&mut h1);
        let sim = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h2);
        assert_eq!(seq.objects_copied, sim.stats.objects_copied);
        assert_eq!(seq.words_copied, sim.stats.words_copied);
        assert_eq!(seq.free, sim.free);
    }

    #[test]
    fn deterministic_cycle_counts() {
        let run = || {
            let mut heap = diamond(500);
            SimCollector::new(GcConfig::with_cores(4))
                .collect(&mut heap)
                .stats
                .total_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_roots_terminate_immediately() {
        let mut heap = Heap::new(100);
        let out = SimCollector::new(GcConfig::with_cores(8)).collect(&mut heap);
        assert_eq!(out.stats.objects_copied, 0);
        assert_eq!(out.free, heap.to_base());
        assert!(out.stats.total_cycles < 100);
    }

    #[test]
    fn test_before_lock_is_functionally_equivalent() {
        let mut h1 = diamond(500);
        let mut h2 = diamond(500);
        let snap = Snapshot::capture(&h1);
        let a = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);
        let cfg = GcConfig {
            test_before_lock: true,
            ..GcConfig::with_cores(4)
        };
        let b = SimCollector::new(cfg).collect(&mut h2);
        verify_collection(&h1, a.free, &snap).unwrap();
        verify_collection(&h2, b.free, &snap).unwrap();
        assert_eq!(a.stats.objects_copied, b.stats.objects_copied);
    }

    #[test]
    fn back_to_back_sim_cycles() {
        let mut heap = diamond(500);
        let snap1 = Snapshot::capture(&heap);
        let out1 = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out1.free, &snap1).unwrap();
        let snap2 = Snapshot::capture(&heap);
        let out2 = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out2.free, &snap2).unwrap();
        assert_eq!(out1.stats.words_copied, out2.stats.words_copied);
    }

    #[test]
    fn null_roots_are_preserved() {
        let mut heap = Heap::new(200);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(0, 1).unwrap();
        b.root(r);
        heap.add_root(NULL);
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(2)).collect(&mut heap);
        verify_collection(&heap, out.free, &snap).unwrap();
        assert_eq!(heap.roots()[1], NULL);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let mut heap = diamond(500);
        let out = SimCollector::new(GcConfig::with_cores(4)).collect(&mut heap);
        let s = &out.stats;
        assert_eq!(s.per_core.len(), 4);
        assert!(s.empty_worklist_cycles <= s.total_cycles);
        // Per-core stalls can never exceed total cycles.
        for pc in &s.per_core {
            assert!(pc.total_stalls() + pc.empty_spin + pc.drain <= s.total_cycles);
        }
    }

    #[test]
    fn scheduled_collection_matches_static_functionally() {
        use crate::schedule::{Adversarial, RandomOrder, SchedulePolicy};
        let mut h0 = diamond(500);
        let snap = Snapshot::capture(&h0);
        let base = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h0);
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let policies: [Box<dyn SchedulePolicy>; 2] = [
                Box::new(RandomOrder::new(seed)),
                Box::new(Adversarial::new(seed)),
            ];
            for mut p in policies {
                let mut heap = diamond(500);
                let out = SimCollector::new(GcConfig::with_cores(4))
                    .collect_scheduled(&mut heap, p.as_mut());
                assert_eq!(
                    out.stats.objects_copied,
                    base.stats.objects_copied,
                    "{}",
                    p.name()
                );
                assert_eq!(
                    out.stats.words_copied,
                    base.stats.words_copied,
                    "{}",
                    p.name()
                );
                assert_eq!(out.free, base.free, "{}", p.name());
                verify_collection(&heap, out.free, &snap).unwrap();
            }
        }
    }

    #[test]
    fn random_policy_matches_tick_permutation_seed() {
        // The legacy knob and the RandomOrder policy are the same arbiter:
        // identical seeds must reproduce identical cycle counts.
        let seed = 7u64;
        let mut h1 = diamond(500);
        let legacy_cfg = GcConfig {
            tick_permutation_seed: Some(seed),
            ..GcConfig::with_cores(4)
        };
        let legacy = SimCollector::new(legacy_cfg).collect(&mut h1);
        let mut h2 = diamond(500);
        let mut policy = crate::schedule::RandomOrder::new(seed);
        let scheduled =
            SimCollector::new(GcConfig::with_cores(4)).collect_scheduled(&mut h2, &mut policy);
        assert_eq!(legacy.stats.total_cycles, scheduled.stats.total_cycles);
        assert_eq!(legacy.free, scheduled.free);
    }

    #[test]
    fn event_trace_captures_full_sb_log() {
        use hwgc_sync::SbEvent;
        let mut heap = diamond(500);
        let mut trace = crate::trace::SignalTrace::with_events(1);
        let out = SimCollector::new(GcConfig::with_cores(4)).collect_traced(&mut heap, &mut trace);
        let events = trace.events();
        assert!(!events.is_empty());
        // Stamps are monotone and never exceed the final cycle count.
        let mut prev = 0;
        for rec in events {
            assert!(rec.cycle >= prev, "stamps must be monotone");
            prev = rec.cycle;
            assert!(rec.cycle <= out.stats.total_cycles);
        }
        // Exactly one core announces termination, and it is the last word.
        let terms: Vec<_> = events
            .iter()
            .filter(|r| matches!(r.event, SbEvent::Termination { .. }))
            .collect();
        assert_eq!(terms.len(), 1);
        assert!(matches!(
            events.last().unwrap().event,
            SbEvent::Termination { .. }
        ));
        // Every evacuated object shows up as exactly one header lock.
        let locks = events
            .iter()
            .filter(|r| matches!(r.event, SbEvent::LockHeader { .. }))
            .count() as u64;
        assert!(locks >= out.stats.objects_copied.saturating_sub(1));
    }

    #[test]
    fn fast_forward_is_bit_exact_under_high_latency() {
        // The Figure 6 regime (+20 cycles on every access) maximizes dead
        // cycles — exactly where fast-forward pays off and where any
        // replication error in stall/stat accounting would surface.
        use hwgc_memsim::MemConfig;
        for cores in [1, 2, 4, 16] {
            let cfg = GcConfig {
                mem: MemConfig::default().with_extra_latency(20),
                ..GcConfig::with_cores(cores)
            };
            let mut h1 = diamond(500);
            let fast = SimCollector::new(cfg).collect(&mut h1);
            let mut h2 = diamond(500);
            let naive_cfg = GcConfig {
                fast_forward: false,
                ..cfg
            };
            let naive = SimCollector::new(naive_cfg).collect(&mut h2);
            assert_eq!(fast.stats, naive.stats, "{cores} cores");
            assert_eq!(fast.free, naive.free, "{cores} cores");
        }
    }

    #[test]
    fn fast_forward_preserves_trace_rows_and_events() {
        use hwgc_memsim::MemConfig;
        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::with_cores(4)
        };
        // Sparse sampling leaves room to skip between samples; the rows
        // and the complete SB event log must still be identical.
        for sample_every in [1u64, 7, 1 << 40] {
            let mut h1 = diamond(500);
            let mut t1 = crate::trace::SignalTrace::with_events(sample_every);
            let fast = SimCollector::new(cfg).collect_traced(&mut h1, &mut t1);
            let mut h2 = diamond(500);
            let mut t2 = crate::trace::SignalTrace::with_events(sample_every);
            let naive = SimCollector::new(GcConfig {
                fast_forward: false,
                ..cfg
            })
            .collect_traced(&mut h2, &mut t2);
            assert_eq!(fast.stats, naive.stats, "sample_every {sample_every}");
            assert_eq!(t1.rows(), t2.rows(), "sample_every {sample_every}");
            assert_eq!(t1.events(), t2.events(), "sample_every {sample_every}");
        }
    }

    #[test]
    fn traced_collection_matches_untraced() {
        let mut h1 = diamond(500);
        let plain = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);
        let mut h2 = diamond(500);
        let mut trace = crate::trace::SignalTrace::new(1);
        let traced = SimCollector::new(GcConfig::with_cores(4)).collect_traced(&mut h2, &mut trace);
        assert_eq!(plain.stats.total_cycles, traced.stats.total_cycles);
        assert_eq!(plain.free, traced.free);
        // One sample per post-root-phase cycle.
        assert_eq!(
            trace.rows().len() as u64,
            traced.stats.total_cycles - traced.stats.root_phase_cycles
        );
        // scan is monotone and gray_words consistent.
        let mut prev = 0;
        for row in trace.rows() {
            assert!(row.scan >= prev);
            prev = row.scan;
            assert_eq!(row.gray_words, row.free - row.scan);
        }
    }
}
