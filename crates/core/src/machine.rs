//! The per-core microprogram of the GC coprocessor, as an explicit state
//! machine (paper Section V-B: "a control unit that implements the garbage
//! collection algorithm as a single microprogram").
//!
//! Each simulated cycle, a core executes one `tick`. Within a tick it may
//! chain several zero-cost actions — the hardware performs up to two ALU
//! operations and initiates up to four memory operations per clock cycle,
//! and uncontended lock acquisitions are free — but any incomplete memory
//! access or contended lock consumes the cycle and is recorded as a stall
//! with its cause (the basis of Table II).
//!
//! The main scanning loop (paper Section IV):
//!
//! ```text
//! with locked scan:   read header of object at scan; scan += size
//! for each ptr in object:
//!     with locked header of c = *ptr:
//!         read header of c
//!         if c not marked:
//!             with locked free:
//!                 mark c; install forwarding pointer; install backlink
//!                 at free; free += size
//!     replace ptr in tospace copy
//! blacken object
//! ```
//!
//! The lock ordering `scan < header < free` is structural in the state
//! machine: no state that holds a header lock ever touches the scan lock,
//! and no state that holds the free lock acquires anything else. Deadlock
//! freedom follows (Habermann).

use hwgc_heap::header::{self, Header};
use hwgc_heap::{Addr, Color, Heap, NULL};
use hwgc_memsim::{HeaderFifo, MemBackend, MemorySystem, Port};
use hwgc_sync::SyncBlock;

use crate::stats::{StallBreakdown, StallReason};

/// Work performed, shared across cores (written only inside ticks, which
/// the engine serializes).
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkCounters {
    pub objects_copied: u64,
    pub words_copied: u64,
    pub pointers_visited: u64,
    /// Line-split extension: sub-object chunks claimed.
    pub chunks_claimed: u64,
}

/// Everything a core touches during a tick, generic over the memory
/// backend (defaulted so existing `Ctx<'_>` spellings keep meaning the
/// fixed-latency model).
pub struct Ctx<'a, B: MemBackend = MemorySystem> {
    pub heap: &'a mut Heap,
    pub sb: &'a mut SyncBlock,
    pub mem: &'a mut B,
    pub fifo: &'a mut HeaderFifo,
    pub done: &'a mut bool,
    pub counters: &'a mut WorkCounters,
    pub test_before_lock: bool,
    /// `Some(L)`: claims take at most `L` body words (extension 1).
    pub line_split: Option<u32>,
}

/// Microprogram states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Compare `scan` to `free` (no lock needed: both registers are
    /// readable by all cores simultaneously); claim work, spin, or detect
    /// termination.
    Poll,
    /// Holding the scan lock, waiting for the frame header load.
    ScanHeaderWait,
    /// Issue the body load for the current word.
    BodyStart,
    /// Waiting for the current body-load word.
    CopyWait,
    /// Ablation C only: unlocked probe of the child header in flight.
    ChildProbeWait,
    /// Acquire the child's header lock.
    ChildLock,
    /// Holding the child's header lock, waiting for its header load.
    ChildHeaderWait,
    /// Holding the header lock, acquire the free lock to evacuate.
    ChildEvacFree,
    /// Holding header + free locks, issue the fromspace header store and
    /// try to buffer the gray frame header in the FIFO.
    ChildEvacStore,
    /// FIFO overflowed: the gray frame header must go to memory too.
    ChildEvacOverflow,
    /// Issue the body store for the current word (`store_val`).
    StoreWord,
    /// Claim finished: blacken (whole object / last chunk of a split
    /// object) or hand back to Poll (non-final chunk).
    ClaimDone,
    /// Issue the final (black) header store for the scanned object.
    Blacken,
    /// Collection finished; wait for this core's buffers to drain.
    Drain,
    /// Terminal state.
    Done,
}

impl State {
    /// Number of microprogram states.
    pub const COUNT: u8 = 15;

    /// Every state, in discriminant order (`from_index` inverts).
    pub const ALL: [State; State::COUNT as usize] = [
        State::Poll,
        State::ScanHeaderWait,
        State::BodyStart,
        State::CopyWait,
        State::ChildProbeWait,
        State::ChildLock,
        State::ChildHeaderWait,
        State::ChildEvacFree,
        State::ChildEvacStore,
        State::ChildEvacOverflow,
        State::StoreWord,
        State::ClaimDone,
        State::Blacken,
        State::Drain,
        State::Done,
    ];

    /// Compact index of this state (for the observability event bus,
    /// which carries states as `u8` to avoid a crate dependency cycle).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`State::index`].
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn from_index(index: u8) -> State {
        State::ALL[index as usize]
    }

    /// Display name of this state.
    pub fn name(self) -> &'static str {
        match self {
            State::Poll => "Poll",
            State::ScanHeaderWait => "ScanHeaderWait",
            State::BodyStart => "BodyStart",
            State::CopyWait => "CopyWait",
            State::ChildProbeWait => "ChildProbeWait",
            State::ChildLock => "ChildLock",
            State::ChildHeaderWait => "ChildHeaderWait",
            State::ChildEvacFree => "ChildEvacFree",
            State::ChildEvacStore => "ChildEvacStore",
            State::ChildEvacOverflow => "ChildEvacOverflow",
            State::StoreWord => "StoreWord",
            State::ClaimDone => "ClaimDone",
            State::Blacken => "Blacken",
            State::Drain => "Drain",
            State::Done => "Done",
        }
    }

    /// [`State::name`] by index — the `fn(u8) -> &'static str` the event
    /// bus carries alongside sampled state vectors.
    pub fn name_of(index: u8) -> &'static str {
        State::from_index(index).name()
    }
}

/// Result of executing one micro-step.
enum Step {
    /// Keep executing in the same cycle (zero-cost chained action).
    Chain(State),
    /// Productive work consumed the cycle; resume in `State` next cycle.
    Yield(State),
    /// No progress; record the stall and retry `State` next cycle.
    Stall(State, StallReason),
}

/// What a full tick amounted to, as seen by the engine's quiescence
/// detector: a cycle in which *every* core reports [`TickOutcome::Stalled`]
/// or [`TickOutcome::Parked`] changed nothing a core can observe, so the
/// next cycles replay identically until the memory system's next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// The core did productive work (or transitioned state) this cycle.
    Progress,
    /// The tick ended in a stall: the core will retry the same failing
    /// step, against the same frozen inputs, every cycle until the cause
    /// resolves.
    Stalled(StallReason),
    /// Terminal [`State::Done`] — the core ticks as a no-op forever.
    Parked,
}

/// Register state for the object currently being scanned / the child
/// currently being processed.
#[derive(Debug, Default, Clone, Copy)]
struct ObjRegs {
    /// Tospace frame of the object being scanned.
    frame: Addr,
    /// Fromspace original (from the frame's backlink).
    backlink: Addr,
    pi: u32,
    delta: u32,
    /// Next body word index (0..pi+delta).
    idx: u32,
    /// Fromspace address of the child under consideration.
    child: Addr,
    child_pi: u32,
    child_delta: u32,
    /// Tospace frame allocated for the child.
    child_dst: Addr,
    /// Value to store into body word `idx`.
    store_val: u32,
    /// One past the last body word of this claim (== pi + delta unless the
    /// object was split).
    end: u32,
    /// Is this claim a chunk of a split object?
    split: bool,
    /// Did the gray header of the child being evacuated fit the FIFO?
    fifo_ok: bool,
}

/// A core's position inside a pure data-copy run — the slice of
/// [`ObjRegs`] the decoupled-window machinery (`engine::par`) needs to
/// advance the copy without the rest of the engine. All remaining words
/// of the claim are data words (`idx >= pi` is checked by
/// [`CoreSm::copy_run`]), loaded from `backlink + 2 + i` and stored to
/// `frame + 2 + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CopyRun {
    /// Tospace frame the words are stored into.
    pub frame: Addr,
    /// Fromspace original the words are loaded from.
    pub backlink: Addr,
    /// Next body word index.
    pub idx: u32,
    /// One past the last body word of the claim.
    pub end: u32,
    /// `true` when the core is parked in [`State::StoreWord`] (its next
    /// retry issues the store for `idx`), `false` for [`State::CopyWait`]
    /// (its next retry consumes the load for `idx`).
    pub in_store: bool,
}

/// One microprogrammed core.
pub struct CoreSm {
    id: usize,
    state: State,
    regs: ObjRegs,
    /// Stall-cycle accounting for this core.
    pub stalls: StallBreakdown,
}

impl CoreSm {
    /// Core with the given index (index order = static lock priority).
    pub fn new(id: usize) -> CoreSm {
        CoreSm {
            id,
            state: State::Poll,
            regs: ObjRegs::default(),
            stalls: StallBreakdown::default(),
        }
    }

    /// Core index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current state (for the engine's termination test and diagnostics).
    pub fn state(&self) -> State {
        self.state
    }

    /// The fromspace header address this core will try to lock on its next
    /// tick (it is parked in [`State::ChildLock`]), if any. Input to
    /// contention-aware scheduling policies ([`crate::schedule`]).
    pub fn pending_header(&self) -> Option<Addr> {
        (self.state == State::ChildLock).then_some(self.regs.child)
    }

    /// The pure data-copy run this core is inside, if any — the window
    /// detector's eligibility view (see `engine::par`). `Some` only when
    /// the core sits in [`State::CopyWait`] or [`State::StoreWord`] with
    /// every remaining body word of the claim a data word (`idx >= pi`):
    /// from here until the claim's last word is stored the core touches
    /// only its own body-port transactions and its disjoint tospace /
    /// fromspace word ranges — never the SB, the FIFO or another core's
    /// memory. Split claims are excluded (their `ClaimDone` consults the
    /// SB chunk counter).
    pub(crate) fn copy_run(&self) -> Option<CopyRun> {
        if self.regs.split || self.regs.idx < self.regs.pi {
            return None;
        }
        match self.state {
            State::CopyWait | State::StoreWord => Some(CopyRun {
                frame: self.regs.frame,
                backlink: self.regs.backlink,
                idx: self.regs.idx,
                end: self.regs.end,
                in_store: self.state == State::StoreWord,
            }),
            _ => None,
        }
    }

    /// Writeback after a decoupled window advanced this core's data run
    /// (see `engine::par`): the kernel copied words `idx..new_idx` and
    /// left the core parked either in [`State::CopyWait`] (waiting on
    /// the body load for word `new_idx`) or, with `in_store`, in
    /// [`State::StoreWord`] (word `new_idx` already consumed into
    /// `store_val`, the store issue stalled on a busy body-store port).
    /// Only legal while [`CoreSm::copy_run`] is `Some`.
    pub(crate) fn set_copy_run_parked(&mut self, new_idx: u32, in_store: bool, store_val: u32) {
        debug_assert!(self.copy_run().is_some());
        debug_assert!(self.regs.idx <= new_idx && new_idx < self.regs.end);
        self.regs.idx = new_idx;
        if in_store {
            self.regs.store_val = store_val;
            self.state = State::StoreWord;
        } else {
            self.state = State::CopyWait;
        }
    }

    /// Execute one clock cycle.
    pub fn tick<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> TickOutcome {
        if self.state == State::Done {
            return TickOutcome::Parked;
        }
        let mut state = self.state;
        // A tick chains at most a handful of zero-cost actions; the bound
        // catches accidental intra-cycle loops.
        for _ in 0..16 {
            match self.step(state, ctx) {
                Step::Chain(next) => state = next,
                Step::Yield(next) => {
                    self.state = next;
                    return TickOutcome::Progress;
                }
                Step::Stall(next, reason) => {
                    self.stalls.record(reason);
                    self.state = next;
                    return TickOutcome::Stalled(reason);
                }
            }
        }
        panic!(
            "core {} chained too many micro-steps in state {:?}",
            self.id, state
        );
    }

    fn step<B: MemBackend>(&mut self, state: State, ctx: &mut Ctx<'_, B>) -> Step {
        match state {
            State::Poll => self.poll(ctx),
            State::ScanHeaderWait => self.scan_header_wait(ctx),
            State::BodyStart => self.body_start(ctx),
            State::CopyWait => self.copy_wait(ctx),
            State::ChildProbeWait => self.child_probe_wait(ctx),
            State::ChildLock => self.child_lock(ctx),
            State::ChildHeaderWait => self.child_header_wait(ctx),
            State::ChildEvacFree => self.child_evac_free(ctx),
            State::ChildEvacStore => self.child_evac_store(ctx),
            State::ChildEvacOverflow => self.child_evac_overflow(ctx),
            State::StoreWord => self.store_word(ctx),
            State::ClaimDone => self.claim_done(ctx),
            State::Blacken => self.blacken(ctx),
            State::Drain => self.drain(ctx),
            State::Done => Step::Yield(State::Done),
        }
    }

    // --- main scanning loop entry ---------------------------------------

    fn poll<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if *ctx.done {
            return Step::Chain(State::Drain);
        }
        let scan = ctx.sb.scan();
        let free = ctx.sb.free();
        if scan < free {
            if !ctx.sb.try_acquire_scan(self.id) {
                return Step::Stall(State::Poll, StallReason::ScanLock);
            }
            // Re-read under the lock: another core may have advanced scan
            // between our unlocked comparison and the acquisition.
            let scan = ctx.sb.scan();
            if scan >= ctx.sb.free() {
                ctx.sb.release_scan(self.id);
                return Step::Stall(State::Poll, StallReason::EmptySpin);
            }
            return self.fetch_scan_header(ctx, scan);
        }
        // scan == free: the work list is empty. The SB evaluates the busy
        // bits and the scan/free comparison in the same cycle (atomic
        // termination test, paper Section IV).
        debug_assert!(!ctx.sb.is_busy(self.id));
        if ctx.sb.none_busy_except(self.id) {
            *ctx.done = true;
            ctx.sb.log_termination(self.id);
            return Step::Chain(State::Drain);
        }
        Step::Stall(State::Poll, StallReason::EmptySpin)
    }

    /// Holding the scan lock: obtain the gray frame header at `scan`, from
    /// the header FIFO when possible (zero cycles, no memory access) or
    /// from memory otherwise — the latter lengthens the scan critical
    /// section, which is the paper's `cup` pathology.
    fn fetch_scan_header<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>, scan: Addr) -> Step {
        if let Some((w0, w1)) = ctx.fifo.peek(scan) {
            return self.claim_object(ctx, scan, w0, w1, true);
        }
        ctx.fifo.count_miss();
        let ok = ctx.mem.try_issue(self.id, Port::HeaderLoad, scan);
        debug_assert!(ok, "header-load buffer must be free here");
        Step::Yield(State::ScanHeaderWait)
    }

    fn scan_header_wait<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.mem.load_ready(self.id, Port::HeaderLoad) {
            return Step::Stall(State::ScanHeaderWait, StallReason::HeaderLoad);
        }
        let scan = ctx.mem.consume_load(self.id, Port::HeaderLoad);
        debug_assert_eq!(scan, ctx.sb.scan());
        let w0 = ctx.heap.word(scan);
        let w1 = ctx.heap.word(scan + 1);
        self.claim_object(ctx, scan, w0, w1, false)
    }

    /// With the frame header in hand: claim work, set the busy bit and
    /// release the scan lock, all in the same cycle.
    ///
    /// Object granularity (the paper): the claim is the whole object and
    /// `scan` advances past it. Line granularity (extension 1): the claim
    /// is at most `L` body words; `scan` only advances once the object's
    /// last chunk is claimed, and the SB's chunk-offset register carries
    /// the intra-object progress between claimants.
    fn claim_object<B: MemBackend>(
        &mut self,
        ctx: &mut Ctx<'_, B>,
        frame: Addr,
        w0: u32,
        w1: u32,
        from_fifo: bool,
    ) -> Step {
        let h = Header::decode(w0, w1);
        if h.color == Color::Black {
            // An object the mutator allocated during this cycle
            // (allocate-black, concurrent extension): nothing to scan,
            // step over it.
            debug_assert_eq!(ctx.sb.scan_chunk_off(), 0);
            ctx.sb.set_scan(self.id, frame + h.size_words());
            ctx.sb.release_scan(self.id);
            return Step::Yield(State::Poll);
        }
        debug_assert_eq!(h.color, Color::Gray, "frame at {frame} not gray");
        let body = h.pi + h.delta;
        let (start, end, split) = match ctx.line_split {
            Some(line) if body > line => {
                let off = ctx.sb.scan_chunk_off();
                let end = (off + line).min(body);
                if off == 0 {
                    ctx.sb.split_begin(self.id, frame, body.div_ceil(line));
                }
                (off, end, true)
            }
            _ => (0, body, false),
        };
        let last_chunk = end == body;
        if last_chunk {
            ctx.sb.set_scan(self.id, frame + h.size_words());
            if split {
                ctx.sb.set_scan_chunk_off(self.id, 0);
            }
            if from_fifo {
                let popped = ctx.fifo.try_pop(frame);
                debug_assert!(popped.is_some());
            }
        } else {
            ctx.sb.set_scan_chunk_off(self.id, end);
        }
        ctx.counters.chunks_claimed += 1;
        self.regs = ObjRegs {
            frame,
            backlink: h.link,
            pi: h.pi,
            delta: h.delta,
            idx: start,
            end,
            split,
            ..ObjRegs::default()
        };
        ctx.sb.set_busy(self.id);
        ctx.sb.release_scan(self.id);
        // The claim itself is a micro-instruction: compare, add, register
        // writes. One clock.
        Step::Yield(State::BodyStart)
    }

    // --- body copy -------------------------------------------------------

    fn body_start<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if self.regs.idx == self.regs.end {
            return Step::Chain(State::ClaimDone);
        }
        let addr = self.regs.backlink + 2 + self.regs.idx;
        let ok = ctx.mem.try_issue(self.id, Port::BodyLoad, addr);
        debug_assert!(ok, "body-load buffer must be free here");
        Step::Yield(State::CopyWait)
    }

    fn copy_wait<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.mem.load_ready(self.id, Port::BodyLoad) {
            return Step::Stall(State::CopyWait, StallReason::BodyLoad);
        }
        let addr = ctx.mem.consume_load(self.id, Port::BodyLoad);
        let val = ctx.heap.word(addr);
        if self.regs.idx < self.regs.pi {
            // Pointer word: translate through the child's header.
            ctx.counters.pointers_visited += 1;
            if val == NULL {
                self.regs.store_val = NULL;
                return Step::Chain(State::StoreWord);
            }
            debug_assert!(
                ctx.heap.in_fromspace(val),
                "body pointer {val} escapes fromspace"
            );
            self.regs.child = val;
            if ctx.test_before_lock {
                // Ablation C: probe the mark bit without the header lock.
                let ok = ctx.mem.try_issue(self.id, Port::HeaderLoad, val);
                debug_assert!(ok);
                return Step::Yield(State::ChildProbeWait);
            }
            return Step::Chain(State::ChildLock);
        }
        // Data word: copy through.
        self.regs.store_val = val;
        Step::Chain(State::StoreWord)
    }

    // --- child processing --------------------------------------------------

    fn child_probe_wait<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.mem.load_ready(self.id, Port::HeaderLoad) {
            return Step::Stall(State::ChildProbeWait, StallReason::HeaderLoad);
        }
        let child = ctx.mem.consume_load(self.id, Port::HeaderLoad);
        debug_assert_eq!(child, self.regs.child);
        let w0 = ctx.heap.word(child);
        if header::is_marked(w0) {
            // Already evacuated: the forwarding pointer is stable, no lock
            // needed — this is exactly what defuses javac's hot headers.
            self.regs.store_val = ctx.heap.word(child + 1);
            return Step::Chain(State::StoreWord);
        }
        // Unmarked at probe time: take the lock and re-read to decide.
        Step::Chain(State::ChildLock)
    }

    fn child_lock<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.sb.try_lock_header(self.id, self.regs.child) {
            return Step::Stall(State::ChildLock, StallReason::HeaderLock);
        }
        let ok = ctx
            .mem
            .try_issue(self.id, Port::HeaderLoad, self.regs.child);
        debug_assert!(ok, "header-load buffer must be free here");
        Step::Yield(State::ChildHeaderWait)
    }

    fn child_header_wait<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.mem.load_ready(self.id, Port::HeaderLoad) {
            return Step::Stall(State::ChildHeaderWait, StallReason::HeaderLoad);
        }
        let child = ctx.mem.consume_load(self.id, Port::HeaderLoad);
        debug_assert_eq!(child, self.regs.child);
        let w0 = ctx.heap.word(child);
        let w1 = ctx.heap.word(child + 1);
        if header::is_marked(w0) {
            self.regs.store_val = w1;
            ctx.sb.unlock_header(self.id);
            return Step::Chain(State::StoreWord);
        }
        self.regs.child_pi = header::pi_of(w0);
        self.regs.child_delta = header::delta_of(w0);
        Step::Chain(State::ChildEvacFree)
    }

    /// Evacuation: the free-lock critical section covers only reading and
    /// advancing `free` (one micro-op each; acquisition is free when
    /// uncontended) — which is why Table II shows near-zero free-lock
    /// stalls even for allocation-heavy benchmarks. The two header writes
    /// are issued right after release, still under the child's header
    /// lock; the comparator array orders any concurrent reader behind
    /// them.
    fn child_evac_free<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx.sb.try_acquire_free(self.id) {
            return Step::Stall(State::ChildEvacFree, StallReason::FreeLock);
        }
        let dst = ctx.sb.free();
        let size = 2 + self.regs.child_pi + self.regs.child_delta;
        assert!(dst + size <= ctx.heap.to_limit(), "tospace overflow");
        ctx.sb.set_free(self.id, dst + size);
        ctx.sb.release_free(self.id);
        self.regs.child_dst = dst;
        // Functional effect of the two header writes; their *timing* is
        // modelled by the store / FIFO handling in ChildEvacStore.
        ctx.heap.set_header(
            dst,
            Header::gray(self.regs.child_pi, self.regs.child_delta, self.regs.child),
        );
        ctx.heap.set_header(
            self.regs.child,
            Header::forwarded(self.regs.child_pi, self.regs.child_delta, dst),
        );
        // Push the gray header in the same cycle as the free increment so
        // the FIFO order always equals the address order — a push delayed
        // behind a busy store buffer could otherwise be overtaken by a
        // later evacuation's push.
        let (w0, w1) =
            Header::gray(self.regs.child_pi, self.regs.child_delta, self.regs.child).encode();
        self.regs.fifo_ok = ctx.fifo.push(dst, w0, w1);
        ctx.counters.objects_copied += 1;
        ctx.counters.words_copied += size as u64;
        Step::Chain(State::ChildEvacStore)
    }

    fn child_evac_store<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        // Mark + forwarding pointer to the fromspace header.
        if !ctx
            .mem
            .try_issue(self.id, Port::HeaderStore, self.regs.child)
        {
            return Step::Stall(State::ChildEvacStore, StallReason::HeaderStore);
        }
        // Gray frame header: buffered on-chip at evacuation time when it
        // fit — then no memory access is needed for it at all (paper
        // Section V-D). On overflow it must be written to memory.
        if self.regs.fifo_ok {
            ctx.sb.unlock_header(self.id);
            self.regs.store_val = self.regs.child_dst;
            return Step::Chain(State::StoreWord);
        }
        Step::Yield(State::ChildEvacOverflow)
    }

    fn child_evac_overflow<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        // The header-store buffer still holds the fromspace store; the
        // gray header must wait for it — the overflow penalty.
        if !ctx
            .mem
            .try_issue(self.id, Port::HeaderStore, self.regs.child_dst)
        {
            return Step::Stall(State::ChildEvacOverflow, StallReason::HeaderStore);
        }
        ctx.sb.unlock_header(self.id);
        self.regs.store_val = self.regs.child_dst;
        Step::Chain(State::StoreWord)
    }

    // --- store + blacken --------------------------------------------------

    fn store_word<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        let addr = self.regs.frame + 2 + self.regs.idx;
        if !ctx.mem.try_issue(self.id, Port::BodyStore, addr) {
            return Step::Stall(State::StoreWord, StallReason::BodyStore);
        }
        ctx.heap.set_word(addr, self.regs.store_val);
        self.regs.idx += 1;
        if self.regs.idx == self.regs.end {
            return Step::Chain(State::ClaimDone);
        }
        // Pipeline: initiate the next body load in the same cycle.
        let next = self.regs.backlink + 2 + self.regs.idx;
        let ok = ctx.mem.try_issue(self.id, Port::BodyLoad, next);
        debug_assert!(ok, "body-load buffer must be free here");
        Step::Yield(State::CopyWait)
    }

    /// A claim's copy work is complete. For whole-object claims this leads
    /// straight to blackening; for split chunks, the SB's chunk counter
    /// decides whether this core was the last finisher (and blackens) or
    /// simply returns to polling.
    fn claim_done<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !self.regs.split {
            return Step::Chain(State::Blacken);
        }
        if ctx.sb.split_finish(self.regs.frame) {
            return Step::Chain(State::Blacken);
        }
        ctx.sb.clear_busy(self.id);
        Step::Yield(State::Poll)
    }

    fn blacken<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        if !ctx
            .mem
            .try_issue(self.id, Port::HeaderStore, self.regs.frame)
        {
            return Step::Stall(State::Blacken, StallReason::HeaderStore);
        }
        ctx.heap.set_header(
            self.regs.frame,
            Header::black(self.regs.pi, self.regs.delta),
        );
        ctx.sb.clear_busy(self.id);
        Step::Yield(State::Poll)
    }

    // --- shutdown ----------------------------------------------------------

    fn drain<B: MemBackend>(&mut self, ctx: &mut Ctx<'_, B>) -> Step {
        let idle = Port::ALL.iter().all(|&p| !ctx.mem.port_busy(self.id, p));
        if idle {
            Step::Yield(State::Done)
        } else {
            Step::Stall(State::Drain, StallReason::Drain)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_core_polls() {
        let c = CoreSm::new(3);
        assert_eq!(c.id(), 3);
        assert_eq!(c.state(), State::Poll);
        assert_eq!(c.stalls.total_stalls(), 0);
    }

    #[test]
    fn empty_worklist_single_core_terminates() {
        let mut heap = Heap::new(64);
        heap.flip();
        let mut sb = SyncBlock::new(1);
        sb.init_pointers(heap.to_base(), heap.to_base());
        let mut mem = MemorySystem::new(1, Default::default());
        let mut fifo = HeaderFifo::new(8);
        let mut done = false;
        let mut counters = WorkCounters::default();
        let mut core = CoreSm::new(0);
        let mut ctx = Ctx {
            heap: &mut heap,
            sb: &mut sb,
            mem: &mut mem,
            fifo: &mut fifo,
            done: &mut done,
            counters: &mut counters,
            test_before_lock: false,
            line_split: None,
        };
        core.tick(&mut ctx);
        assert!(done);
        assert_eq!(core.state(), State::Done);
    }

    #[test]
    fn second_core_spins_while_first_busy() {
        let mut heap = Heap::new(64);
        heap.flip();
        let mut sb = SyncBlock::new(2);
        sb.init_pointers(heap.to_base(), heap.to_base());
        sb.set_busy(0); // core 0 pretends to scan an object
        let mut mem = MemorySystem::new(2, Default::default());
        let mut fifo = HeaderFifo::new(8);
        let mut done = false;
        let mut counters = WorkCounters::default();
        let mut core1 = CoreSm::new(1);
        let mut ctx = Ctx {
            heap: &mut heap,
            sb: &mut sb,
            mem: &mut mem,
            fifo: &mut fifo,
            done: &mut done,
            counters: &mut counters,
            test_before_lock: false,
            line_split: None,
        };
        core1.tick(&mut ctx);
        assert!(!done);
        assert_eq!(core1.state(), State::Poll);
        assert_eq!(core1.stalls.empty_spin, 1);
    }
}
