//! Cycle-accurate statistics matching the paper's evaluation.
//!
//! Table II reports, per benchmark at 16 cores, the total cycle count and
//! the mean number of cycles each core spent stalled on: the scan lock, the
//! free lock, header locks, body loads, body stores, header loads and
//! header stores. Table I reports the fraction of cycles during which the
//! work list is empty (`scan == free`). [`GcStats`] captures all of these
//! plus auxiliary counters used by the ablation experiments.

use hwgc_memsim::{FifoStats, MemStats};
use hwgc_sync::SyncStats;

/// Why a core failed to make progress in a given cycle. One reason is
/// recorded per stalled core per cycle, mirroring the paper's monitoring
/// framework which traces each core's stall cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Waiting for the `scan` lock.
    ScanLock,
    /// Waiting for the `free` lock.
    FreeLock,
    /// Waiting for a header lock held by another core.
    HeaderLock,
    /// Waiting for a body load to complete.
    BodyLoad,
    /// Waiting for the body store buffer to drain.
    BodyStore,
    /// Waiting for a header load to complete.
    HeaderLoad,
    /// Waiting for the header store buffer to drain.
    HeaderStore,
    /// Work list empty (`scan == free`) but other cores still busy: the
    /// core spins. Not a stall in the paper's Table II sense; the basis of
    /// Table I.
    EmptySpin,
    /// Collection finished; waiting for the final buffer flush.
    Drain,
}

impl StallReason {
    /// Number of stall reasons (bus index space).
    pub const COUNT: usize = 9;

    /// Every reason, in index order: the seven Table II classes first,
    /// then the two idle causes (`EmptySpin`, `Drain`).
    pub const ALL: [StallReason; StallReason::COUNT] = [
        StallReason::ScanLock,
        StallReason::FreeLock,
        StallReason::HeaderLock,
        StallReason::BodyLoad,
        StallReason::BodyStore,
        StallReason::HeaderLoad,
        StallReason::HeaderStore,
        StallReason::EmptySpin,
        StallReason::Drain,
    ];

    /// Stable small index for the event bus (reasons travel as `u8` plus a
    /// name function, like microprogram states, so `hwgc-obs` needs no
    /// dependency on this crate).
    pub fn index(self) -> u8 {
        match self {
            StallReason::ScanLock => 0,
            StallReason::FreeLock => 1,
            StallReason::HeaderLock => 2,
            StallReason::BodyLoad => 3,
            StallReason::BodyStore => 4,
            StallReason::HeaderLoad => 5,
            StallReason::HeaderStore => 6,
            StallReason::EmptySpin => 7,
            StallReason::Drain => 8,
        }
    }

    /// The reason at bus index `i` (inverse of [`StallReason::index`]).
    pub fn from_index(i: u8) -> Option<StallReason> {
        StallReason::ALL.get(i as usize).copied()
    }

    /// snake_case display name, matching the `STALL_COLUMNS` /
    /// `hwgc-metrics-v1` naming.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::ScanLock => "scan_lock",
            StallReason::FreeLock => "free_lock",
            StallReason::HeaderLock => "header_lock",
            StallReason::BodyLoad => "body_load",
            StallReason::BodyStore => "body_store",
            StallReason::HeaderLoad => "header_load",
            StallReason::HeaderStore => "header_store",
            StallReason::EmptySpin => "empty_spin",
            StallReason::Drain => "drain",
        }
    }

    /// [`StallReason::name`] by bus index (the bus's `fn(u8)` form;
    /// unknown indices render as `"?"`).
    pub fn name_of(i: u8) -> &'static str {
        StallReason::from_index(i).map_or("?", StallReason::name)
    }
}

/// Per-core stall cycle counts (the columns of Table II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    pub scan_lock: u64,
    pub free_lock: u64,
    pub header_lock: u64,
    pub body_load: u64,
    pub body_store: u64,
    pub header_load: u64,
    pub header_store: u64,
    pub empty_spin: u64,
    pub drain: u64,
}

impl StallBreakdown {
    /// Record one stalled cycle.
    pub fn record(&mut self, reason: StallReason) {
        self.record_n(reason, 1);
    }

    /// Record `n` stalled cycles with the same cause in one step — used by
    /// the engine's fast-forward to replicate what `n` naive iterations
    /// would have recorded for a core whose stall cannot resolve before
    /// the next memory event.
    pub fn record_n(&mut self, reason: StallReason, n: u64) {
        match reason {
            StallReason::ScanLock => self.scan_lock += n,
            StallReason::FreeLock => self.free_lock += n,
            StallReason::HeaderLock => self.header_lock += n,
            StallReason::BodyLoad => self.body_load += n,
            StallReason::BodyStore => self.body_store += n,
            StallReason::HeaderLoad => self.header_load += n,
            StallReason::HeaderStore => self.header_store += n,
            StallReason::EmptySpin => self.empty_spin += n,
            StallReason::Drain => self.drain += n,
        }
    }

    /// The recorded cycle count for `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        match reason {
            StallReason::ScanLock => self.scan_lock,
            StallReason::FreeLock => self.free_lock,
            StallReason::HeaderLock => self.header_lock,
            StallReason::BodyLoad => self.body_load,
            StallReason::BodyStore => self.body_store,
            StallReason::HeaderLoad => self.header_load,
            StallReason::HeaderStore => self.header_store,
            StallReason::EmptySpin => self.empty_spin,
            StallReason::Drain => self.drain,
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, o: &StallBreakdown) {
        self.scan_lock += o.scan_lock;
        self.free_lock += o.free_lock;
        self.header_lock += o.header_lock;
        self.body_load += o.body_load;
        self.body_store += o.body_store;
        self.header_load += o.header_load;
        self.header_store += o.header_store;
        self.empty_spin += o.empty_spin;
        self.drain += o.drain;
    }

    /// Total Table-II stall cycles (lock + memory stalls; spinning on an
    /// empty work list and end-of-cycle draining are reported separately,
    /// as in the paper).
    pub fn total_stalls(&self) -> u64 {
        self.scan_lock
            + self.free_lock
            + self.header_lock
            + self.body_load
            + self.body_store
            + self.header_load
            + self.header_store
    }
}

/// Full statistics of one simulated collection cycle.
///
/// `PartialEq` is part of the fast-forward contract: the differential
/// tests compare entire `GcStats` values between the fast-forwarding and
/// the naive engine loop, field for field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Total clock cycles of the collection cycle (Table II "Total").
    pub total_cycles: u64,
    /// Cycles during which `scan == free` — no gray objects were available
    /// for processing (Table I).
    pub empty_worklist_cycles: u64,
    /// Stall cycles summed over all cores.
    pub stall: StallBreakdown,
    /// Stall cycles per core.
    pub per_core: Vec<StallBreakdown>,
    /// Objects evacuated (and later scanned).
    pub objects_copied: u64,
    /// Words copied, headers included.
    pub words_copied: u64,
    /// Pointer slots processed during scanning.
    pub pointers_visited: u64,
    /// Scan claims performed. Equals `objects_copied` at object
    /// granularity; exceeds it when the line-split extension divides
    /// large objects across several claims.
    pub chunks_claimed: u64,
    /// Roots processed by core 1 in the initialization phase.
    pub roots_processed: u64,
    /// Cycles consumed by the sequential root-evacuation phase.
    pub root_phase_cycles: u64,
    /// Header-FIFO effectiveness.
    pub fifo: FifoStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Synchronization-block contention counters.
    pub sync: SyncStats,
}

impl GcStats {
    /// FNV-1a digest over the complete statistics (every counter of every
    /// substructure, via the canonical `Debug` rendering — all fields are
    /// integers, so the rendering is exact). Two runs are stats-equivalent
    /// iff their digests match; the run ledger records this as the
    /// simulation's output fingerprint. Wall-clock never enters: `GcStats`
    /// carries simulated quantities only.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in format!("{self:?}").bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }

    /// Fraction of cycles with an empty work list (Table I), in [0, 1].
    pub fn empty_worklist_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.empty_worklist_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Mean fraction of time a core spent stalled on `reason`
    /// (the percentages of Table II).
    pub fn stall_fraction(&self, reason: StallReason) -> f64 {
        let n = self.per_core.len().max(1) as u64;
        let denom = (self.total_cycles * n) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.stall.get(reason) as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = StallBreakdown::default();
        a.record(StallReason::ScanLock);
        a.record(StallReason::ScanLock);
        a.record(StallReason::BodyLoad);
        let mut b = StallBreakdown::default();
        b.record(StallReason::HeaderLoad);
        b.merge(&a);
        assert_eq!(b.scan_lock, 2);
        assert_eq!(b.header_load, 1);
        assert_eq!(b.total_stalls(), 4);
    }

    #[test]
    fn empty_spin_not_a_table2_stall() {
        let mut a = StallBreakdown::default();
        a.record(StallReason::EmptySpin);
        a.record(StallReason::Drain);
        assert_eq!(a.total_stalls(), 0);
    }

    #[test]
    fn fractions() {
        let stats = GcStats {
            total_cycles: 100,
            empty_worklist_cycles: 25,
            stall: StallBreakdown {
                scan_lock: 40,
                ..Default::default()
            },
            per_core: vec![StallBreakdown::default(); 2],
            ..Default::default()
        };
        assert!((stats.empty_worklist_fraction() - 0.25).abs() < 1e-12);
        assert!((stats.stall_fraction(StallReason::ScanLock) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reason_index_round_trips() {
        for (i, reason) in StallReason::ALL.iter().enumerate() {
            assert_eq!(reason.index() as usize, i);
            assert_eq!(StallReason::from_index(i as u8), Some(*reason));
            assert_eq!(StallReason::name_of(i as u8), reason.name());
        }
        assert_eq!(StallReason::from_index(StallReason::COUNT as u8), None);
        assert_eq!(StallReason::name_of(255), "?");
        // The first seven indices are exactly the Table II columns.
        let table2: u64 = StallReason::ALL[..7]
            .iter()
            .map(|r| {
                let mut b = StallBreakdown::default();
                b.record(*r);
                b.total_stalls()
            })
            .sum();
        assert_eq!(table2, 7);
    }

    #[test]
    fn breakdown_get_matches_fields() {
        let mut b = StallBreakdown::default();
        for (n, reason) in StallReason::ALL.iter().enumerate() {
            b.record_n(*reason, n as u64 + 1);
        }
        for (n, reason) in StallReason::ALL.iter().enumerate() {
            assert_eq!(b.get(*reason), n as u64 + 1);
        }
    }

    #[test]
    fn zero_cycles_fractions_are_zero() {
        let stats = GcStats::default();
        assert_eq!(stats.empty_worklist_fraction(), 0.0);
        assert_eq!(stats.stall_fraction(StallReason::ScanLock), 0.0);
    }
}
