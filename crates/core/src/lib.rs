//! The paper's primary contribution: a fine-grained parallel compacting
//! garbage collector running on a (simulated) multi-core GC coprocessor
//! with hardware-supported synchronization.
//!
//! The collector is the parallel variant of Cheney's copying algorithm from
//! paper Section IV: gray objects form a *single centralized work list* —
//! the tospace region between the `scan` and `free` registers — and work is
//! distributed on an object-by-object basis. Three invariants are enforced
//! by synchronization:
//!
//! 1. every gray object is assigned to exactly one core (atomic access to
//!    `scan`),
//! 2. every object is evacuated exactly once (atomic access to object
//!    headers),
//! 3. every object gets an exclusive tospace area (atomic access to
//!    `free`),
//!
//! with the deadlock-free lock ordering `scan < header < free`.
//!
//! Modules:
//!
//! * [`config`] — collector configuration (core count, memory model,
//!   ablation switches),
//! * [`stats`] — cycle-accurate statistics matching the paper's Tables I
//!   and II,
//! * [`machine`] — the per-core microprogram as an explicit state machine,
//! * [`engine`] — the cycle-level simulation loop and [`SimCollector`],
//! * [`schedule`] — pluggable per-cycle core-arbitration policies (the
//!   schedule-exploration hook used by the `hwgc-check` harness),
//! * [`seq`] — the sequential Cheney reference collector (functionally the
//!   paper's 1-core configuration, with no timing model).

pub mod concurrent;
pub mod config;
pub mod engine;
pub mod machine;
pub mod schedule;
pub mod seq;
pub mod stats;
pub mod trace;

pub use concurrent::{MutatorConfig, MutatorStats};
pub use config::{engine_from, host_threads_from, EngineKind, GcConfig};
pub use engine::{ConcurrentOutcome, GcOutcome, SimCollector};
pub use schedule::{
    Adversarial, CoreView, RandomOrder, SchedulePolicy, ScheduleView, StaticPriority,
};
pub use seq::{SeqCheney, SeqOutcome};
pub use stats::{GcStats, StallBreakdown, StallReason};
pub use trace::{SignalTrace, TraceProbe, TraceRow};
