//! Host-thread-parallel window execution for the sparse engine
//! ([`crate::config::EngineKind::Par`], DESIGN §10).
//!
//! When every core is parked and the memory system is *window-ready*
//! (every transaction in plain flight — nothing queued, completed,
//! blocked-pending-recheck, or logging), the only activity for a while is
//! a set of independent body-copy streams: cores inside a pure data-copy
//! run ([`crate::machine::CoreSm::copy_run`]) consuming loads and issuing
//! store/load pairs against their own port buffers and their own disjoint
//! heap ranges. The [`Windower`] finds a *conservatively safe horizon* `E`
//! — no event before `E+1` can couple two cores — and advances every such
//! stream to `E` in closed form: exact per-word consume/store-action
//! timestamps reproduce the serial engine's stall tallies, issue counters
//! and queue statistics, and a [`BodyWindowPatch`] per core rewrites the
//! memory system to the state the serial loop would hold at `E`. The heap
//! writes themselves (the actual copied words) are data-parallel across
//! disjoint ranges, so [`ParPool`] fans them out over persistent host
//! threads behind a [`WindowGate`] scatter/gather handshake.
//!
//! # The safety argument, in window order
//!
//! * **Kernel cores** are parked on a body load inside a pure copy run
//!   with ≥ 2 words left, their load in flight, and *both header ports
//!   idle* (an in-flight blacken store would mutate comparator state on
//!   retirement and could unblock another core's header load, which
//!   contributes no retire bound). From here to the claim's second-to-last
//!   word they touch nothing shared: their timeline is fully determined by
//!   the latency model, so it can be replayed in closed form.
//! * **Every other core** bounds `E`: if it has any transaction in
//!   service, its earliest retirement `r` caps the window at `r - 1`
//!   (nothing can wake it earlier — SB wakes need a core tick, and no
//!   kernel core performs SB operations). A core with *no* retire bound is
//!   `Done`, parked on an SB list no kernel core signals, or stalled on a
//!   comparator-blocked header load — and the header store blocking it is
//!   in service on some non-kernel core's port, whose bound already caps
//!   the window.
//! * **Feasibility**: the closed form assumes every issue is serviced the
//!   next tick, i.e. the request queue never exceeds the per-tick
//!   bandwidth. The first oversubscribed tick truncates the window just
//!   before it; spillover is never modelled, only avoided.
//! * **Clean cut**: `E` is walked down off any core's success tick
//!   (consume or store-action), so every in-window action completes
//!   strictly inside the window and the port buffers at `E` hold plain
//!   in-service transactions — exactly the shape `apply_body_window`
//!   patches. A *retirement* landing on `E` is fine: its wake is consumed
//!   by the plan itself, matching the serial loop's same-cycle drain.
//!
//! Stall accounting survives any cut because a parked core's bookkeeping
//! is split-invariant: `k` stalls recorded at parking plus a wake-time
//! replay of `wake - 1 - park_since` covers every stalled tick exactly
//! once for *any* legal `park_since`. Windows only run with probes off
//! (quiet mode), so no observer can distinguish the splits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use hwgc_heap::{Addr, Heap, Word};
use hwgc_memsim::{BodyWindowPatch, FinalTxn, MemBackend, Port};
use hwgc_sync::WindowGate;

use crate::machine::{CopyRun, CoreSm, State};
use crate::stats::StallReason;

/// Fired-window tally for the vacuity guard below: the differential
/// suites prove windows are *exact*; this proves they actually *open*.
#[cfg(test)]
pub(crate) static WINDOWS_FIRED: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

/// Windows shorter than this are not worth the planning pass.
pub(crate) const MIN_WINDOW: u64 = 16;
/// Cap on the horizon scan (bounds the planner's scratch arrays).
pub(crate) const MAX_WINDOW: u64 = 4096;

/// Per-core writeback of a planned window: where the copy run ends up,
/// the stall tallies the serial loop would have recorded inside the
/// window, and the re-park position.
pub(crate) struct CoreFinish {
    pub core: usize,
    /// New `ObjRegs::idx` (first word not yet fully stored).
    pub new_idx: u32,
    /// Parked in `StoreWord` (word `new_idx` consumed, store stalled)
    /// rather than `CopyWait`.
    pub in_store: bool,
    /// `StallReason::BodyLoad` ticks to record now.
    pub load_stalls: u64,
    /// `StallReason::BodyStore` ticks to record now.
    pub store_stalls: u64,
    /// The re-park stamp (the tick the final in-window stall occurred).
    pub park_since: u64,
    /// Fromspace start of the fully-copied span (`copy_len` words; the
    /// span itself is in [`Windower::copies`]). `copy_src + copy_len` is
    /// also the fromspace address of the consumed-but-unstored word when
    /// `in_store`.
    pub copy_src: Addr,
    pub copy_len: u32,
}

/// One disjoint copy span executed by the pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CopySpan {
    pub src: Addr,
    pub dst: Addr,
    pub len: u32,
}

/// A successfully planned window (details live in the [`Windower`]'s
/// scratch: [`Windower::finishes`], [`Windower::patches`],
/// [`Windower::copies`]).
pub(crate) struct WindowSummary {
    pub end_cycle: u64,
    pub busy_ticks: u64,
    pub occupancy_sum: u64,
}

/// One kernel core's entry state for the planning pass.
#[derive(Clone, Copy)]
struct KernelSim {
    core: usize,
    run: CopyRun,
    park_since: u64,
    /// Retire cycle of the in-flight body load (word `run.idx`'s consume).
    c0: u64,
    /// Earliest tick the body-store port is free (`0` when idle).
    store_free: u64,
    /// Service latency of the first in-window store (later stores and
    /// every load continue sequential streams: burst, `extra` only).
    first_store_lat: u64,
    /// Pre-window in-flight store, for passthrough when no store action
    /// executes in-window.
    store_pass: Option<FinalTxn>,
    /// Pre-window burst trackers, for passthrough likewise.
    last_load_addr: Option<u32>,
    last_store_addr: Option<u32>,
    /// This core's events in [`Windower::events`].
    ev_start: usize,
    ev_len: usize,
}

/// The window planner. Owns reusable scratch (windows fire hundreds of
/// thousands of times per collection; steady state must not allocate).
pub(crate) struct Windower {
    /// No window can open before this cycle: a previous plan died on a
    /// non-kernel in-service transaction retiring here, and that
    /// transaction keeps re-bounding every attempt until it retires.
    /// Purely an optimization; attempts before it would just fail again.
    pub(crate) snooze_until: u64,
    /// Why the last [`Windower::plan`] returned `None`, as a hostprof
    /// counter key (`win.veto.*`). Deterministic — set from simulation
    /// state only — so the window funnel is golden-testable. The engine
    /// reads it only when its hostprof is active.
    last_veto: &'static str,
    sims: Vec<KernelSim>,
    /// Per simulated word: (consume tick `c`, store-action tick `s`,
    /// store retire `d`), flattened across sims.
    events: Vec<(u64, u64, u64)>,
    /// Issue counts per window offset (tick `now + 1 + o`).
    issues: Vec<u32>,
    /// Success-tick marks per window offset (forbidden `E` values).
    success: Vec<bool>,
    patches: Vec<BodyWindowPatch>,
    finishes: Vec<CoreFinish>,
    copies: Vec<CopySpan>,
}

impl Windower {
    pub(crate) fn new() -> Windower {
        Windower {
            snooze_until: 0,
            last_veto: "win.veto.none",
            sims: Vec::new(),
            events: Vec::new(),
            issues: Vec::new(),
            success: Vec::new(),
            patches: Vec::new(),
            finishes: Vec::new(),
            copies: Vec::new(),
        }
    }

    pub(crate) fn finishes(&self) -> &[CoreFinish] {
        &self.finishes
    }

    pub(crate) fn patches(&self) -> &[BodyWindowPatch] {
        &self.patches
    }

    pub(crate) fn copies(&self) -> &[CopySpan] {
        &self.copies
    }

    /// The `win.veto.*` counter key of the last failed [`Windower::plan`]:
    ///
    /// * `no_bandwidth` — zero-bandwidth memory model, windows never open;
    /// * `mem_not_ready` — a transaction queued / completed / blocked /
    ///   logging, so the memory system is not in plain flight;
    /// * `retire_bound` — a non-kernel core's earliest retirement caps the
    ///   window below [`MIN_WINDOW`];
    /// * `no_kernels` — no parked core qualifies as a kernel stream;
    /// * `stream_bound` — a kernel stream's own final-word consume (or its
    ///   horizon) caps the window below [`MIN_WINDOW`];
    /// * `clean_cut` — feasibility truncation plus the walk off success
    ///   ticks left less than [`MIN_WINDOW`];
    /// * `no_words` — a legal window in which no stream completes a word.
    pub(crate) fn last_veto(&self) -> &'static str {
        self.last_veto
    }

    /// Plan a window starting after `now`. `None` when no sound window of
    /// at least [`MIN_WINDOW`] cycles with at least one fully-copied word
    /// exists; the caller then falls back to the ordinary sparse jump.
    ///
    /// Preconditions: every core parked (`awake == 0`), quiet mode, and
    /// `mem.window_ready()`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn plan<B: MemBackend>(
        &mut self,
        now: u64,
        max_cycles: u64,
        bandwidth: u32,
        latency: u64,
        extra: u64,
        cores: &[CoreSm],
        park_reason: &[Option<StallReason>],
        park_since: &[u64],
        mem: &B,
    ) -> Option<WindowSummary> {
        if bandwidth == 0 {
            self.last_veto = "win.veto.no_bandwidth";
            return None;
        }
        if !mem.window_ready() {
            self.last_veto = "win.veto.mem_not_ready";
            return None;
        }
        // Kernel candidacy on engine state alone (the caller's O(1) gate
        // guarantees at least one; the predicate must match the gate's).
        let cand = |core: usize, sm: &CoreSm| {
            park_reason[core] == Some(StallReason::BodyLoad)
                && sm
                    .copy_run()
                    .is_some_and(|r| !r.in_store && r.end - r.idx >= 2)
        };
        // ---- 1. Classify cores; non-kernel retire bounds cap E. -------
        //         Bound pass first: most instants die on a near retire,
        //         and the bail must not pay for port-view construction.
        let mut bound = (now + MAX_WINDOW).min(max_cycles - 1);
        for (core, sm) in cores.iter().enumerate() {
            if sm.state() == State::Done || cand(core, sm) {
                continue;
            }
            // No retire bound means Done (skipped above), an SB park no
            // kernel core signals, or a comparator-blocked header load
            // whose blocking store bounds E via its owner.
            if let Some(r) = mem.earliest_retire(core) {
                debug_assert!(r > now);
                bound = bound.min(r - 1);
                if bound < now + MIN_WINDOW {
                    self.snooze_until = bound + 1;
                    self.last_veto = "win.veto.retire_bound";
                    return None;
                }
            }
        }
        self.sims.clear();
        for (core, sm) in cores.iter().enumerate() {
            if sm.state() == State::Done || !cand(core, sm) {
                continue;
            }
            let kernel = sm
                .copy_run()
                .filter(|_| {
                    !mem.port_busy(core, Port::HeaderLoad)
                        && !mem.port_busy(core, Port::HeaderStore)
                })
                .and_then(|run| {
                    let view = mem.body_ports_view(core)?;
                    let load = view.load?;
                    debug_assert_eq!(load.addr, run.backlink + 2 + run.idx);
                    let first_burst =
                        view.last_store_addr == Some((run.frame + 2 + run.idx).wrapping_sub(1));
                    Some(KernelSim {
                        core,
                        run,
                        park_since: park_since[core],
                        c0: load.done_at,
                        store_free: view.store.map_or(0, |s| s.done_at),
                        first_store_lat: if first_burst { extra } else { latency + extra },
                        store_pass: view.store.map(|s| FinalTxn {
                            addr: s.addr,
                            done_at: s.done_at,
                            issued_at: s.issued_at,
                        }),
                        last_load_addr: view.last_load_addr,
                        last_store_addr: view.last_store_addr,
                        ev_start: 0,
                        ev_len: 0,
                    })
                });
            match kernel {
                Some(sim) => self.sims.push(sim),
                // A candidate that fails the port checks is an ordinary
                // other core: its in-flight transactions bound E.
                None => {
                    if let Some(r) = mem.earliest_retire(core) {
                        debug_assert!(r > now);
                        bound = bound.min(r - 1);
                        if bound < now + MIN_WINDOW {
                            self.snooze_until = bound + 1;
                            self.last_veto = "win.veto.retire_bound";
                            return None;
                        }
                    }
                }
            }
        }
        if self.sims.is_empty() {
            self.last_veto = "win.veto.no_kernels";
            return None;
        }

        // ---- 2. Replay each kernel stream in closed form to the -------
        //         horizon; the run's final word caps E at its consume - 1
        //         (its store chains straight into ClaimDone, which is SB
        //         work).
        let horizon = bound;
        self.events.clear();
        for si in 0..self.sims.len() {
            let sim = &mut self.sims[si];
            let nwords = u64::from(sim.run.end - sim.run.idx);
            sim.ev_start = self.events.len();
            let mut c = sim.c0;
            let mut store_ready = sim.store_free;
            let mut lat = sim.first_store_lat;
            let mut i = 0u64;
            loop {
                if i == nwords - 1 {
                    // `c` is the final word's consume tick.
                    bound = bound.min(c - 1);
                    break;
                }
                if c > horizon {
                    break;
                }
                let s = c.max(store_ready);
                let d = s + 1 + lat;
                self.events.push((c, s, d));
                if s > horizon {
                    break;
                }
                store_ready = d;
                lat = extra;
                c = s + 1 + extra;
                i += 1;
            }
            sim.ev_len = self.events.len() - sim.ev_start;
        }
        let mut end = bound;
        if end < now + MIN_WINDOW {
            self.last_veto = "win.veto.stream_bound";
            return None;
        }

        // ---- 3. Success-tick marks and per-tick issue counts over the -
        //         full horizon (events are absolute: they do not move as
        //         E shrinks, only fall out of the window).
        let span = (horizon - now) as usize;
        self.success.clear();
        self.success.resize(span, false);
        self.issues.clear();
        self.issues.resize(span, 0);
        let off = |t: u64| (t - now - 1) as usize;
        for &(c, s, _) in &self.events {
            if c <= horizon {
                self.success[off(c)] = true;
            }
            if s <= horizon {
                self.success[off(s)] = true;
                // A store action issues the store and the next load.
                self.issues[off(s)] += 2;
            }
        }

        // ---- 4. Feasibility: requests issued at tick t are serviced at -
        //         t + 1 only if at most `bandwidth` arrive; cut the
        //         window before the first oversubscribed tick.
        for t in now + 1..end {
            if self.issues[off(t)] > bandwidth {
                end = t - 1;
                break;
            }
        }
        // ---- 5. Walk E down off success ticks (stall ticks are fine). -
        while end > now && self.success[off(end)] {
            end -= 1;
        }
        if end < now + MIN_WINDOW {
            self.last_veto = "win.veto.clean_cut";
            return None;
        }

        // ---- 6. Truncate every stream at E; emit patches, finishes, ---
        //         copies and the queue statistics of the skipped ticks.
        self.patches.clear();
        self.finishes.clear();
        self.copies.clear();
        let mut total_words = 0u64;
        for sim in &self.sims {
            let evs = &self.events[sim.ev_start..sim.ev_start + sim.ev_len];
            // Stores with their action strictly inside the window.
            let m = evs.iter().take_while(|&&(_, s, _)| s < end).count();
            let boundary_consume = match evs.get(m) {
                Some(&(c, s, _)) => {
                    debug_assert!(s > end);
                    c
                }
                // Stream generation stopped at word m: final word, or its
                // consume lies beyond the horizon. Either way > end.
                None => match m {
                    0 => sim.c0,
                    _ => evs[m - 1].1 + 1 + extra,
                },
            };
            debug_assert_ne!(boundary_consume, end);
            if boundary_consume > end && m == 0 {
                // Nothing happened for this core inside the window; its
                // original park state stays exactly right.
                continue;
            }
            let idx0 = sim.run.idx;
            let src0 = sim.run.backlink + 2 + idx0;
            let dst0 = sim.run.frame + 2 + idx0;
            let entry_replay = sim.c0 - 1 - sim.park_since;
            let mut load_stalls = entry_replay;
            let mut store_stalls = 0u64;
            for (i, &(c, s, _)) in evs[..m].iter().enumerate() {
                if i > 0 {
                    load_stalls += c - evs[i - 1].1 - 1;
                }
                store_stalls += s - c;
            }
            let in_store = boundary_consume < end;
            let (finish_park, last_stall_load, last_stall_store) = if in_store {
                if m > 0 {
                    load_stalls += boundary_consume - evs[m - 1].1 - 1;
                }
                // Parks at the consume tick: the chained store issue
                // failed there (the previous store is still in flight).
                (boundary_consume, 0, 1)
            } else {
                // Parks one tick after the last store action, waiting on
                // the load it issued.
                (evs[m - 1].1 + 1, 1, 0)
            };
            load_stalls += last_stall_load;
            store_stalls += last_stall_store;
            let (load_patch, last_load_addr) = if in_store {
                // Word idx0 + m's load was consumed at `boundary_consume`;
                // the next load is issued only together with its store.
                let la = if m > 0 {
                    Some(src0 + m as u32)
                } else {
                    sim.last_load_addr
                };
                (None, la)
            } else {
                // The load for word idx0 + m, issued with store m - 1, is
                // still in flight (m >= 1 here: m == 0 was skipped above).
                let addr = src0 + m as u32;
                (
                    Some(FinalTxn {
                        addr,
                        done_at: boundary_consume,
                        issued_at: evs[m - 1].1,
                    }),
                    Some(addr),
                )
            };
            let (store_patch, last_store_addr) = if m > 0 {
                let (_, s, d) = evs[m - 1];
                let p = (d > end).then_some(FinalTxn {
                    addr: dst0 + (m as u32 - 1),
                    done_at: d,
                    issued_at: s,
                });
                (p, Some(dst0 + (m as u32 - 1)))
            } else {
                // In-store boundary at word 0: the pre-window store is
                // necessarily still in flight (it kept the action out).
                debug_assert!(sim.store_pass.is_some_and(|t| t.done_at > end));
                (sim.store_pass, sim.last_store_addr)
            };
            self.patches.push(BodyWindowPatch {
                core: sim.core,
                issued_loads: m as u64,
                issued_stores: m as u64,
                load: load_patch,
                store: store_patch,
                last_load_addr,
                last_store_addr,
            });
            self.finishes.push(CoreFinish {
                core: sim.core,
                new_idx: idx0 + m as u32,
                in_store,
                load_stalls,
                store_stalls,
                park_since: finish_park,
                copy_src: src0,
                copy_len: m as u32,
            });
            if m > 0 {
                self.copies.push(CopySpan {
                    src: src0,
                    dst: dst0,
                    len: m as u32,
                });
                total_words += m as u64;
            }
        }
        if total_words == 0 {
            self.last_veto = "win.veto.no_words";
            return None;
        }
        // Queue statistics of the skipped ticks: issues at t arrive (and
        // are all serviced) at t + 1.
        let mut busy_ticks = 0u64;
        let mut occupancy_sum = 0u64;
        for t in now + 1..end {
            let n = self.issues[off(t)];
            if n > 0 && n <= bandwidth {
                busy_ticks += 1;
                occupancy_sum += u64::from(n);
            }
        }
        #[cfg(test)]
        WINDOWS_FIRED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(WindowSummary {
            end_cycle: end,
            busy_ticks,
            occupancy_sum,
        })
    }
}

/// The copy job published through the gate: a heap base pointer and a
/// span table, valid for the duration of one dispatch (the coordinator
/// blocks in `await_done` while workers read them). Addresses are carried
/// as `usize` so the job is plain `Send` data.
#[derive(Clone, Copy)]
struct CopyJob {
    base: usize,
    spans: usize,
    n_spans: usize,
    stripes: usize,
}

fn run_stripe(job: CopyJob, stripe: usize) {
    let base = job.base as *mut Word;
    let spans = job.spans as *const CopySpan;
    let mut i = stripe;
    while i < job.n_spans {
        // SAFETY: the span table outlives the dispatch; spans address
        // disjoint fromspace (read) and tospace (write) word ranges of
        // the one heap allocation behind `base`, and no two spans overlap
        // (each core owns its claim's exclusive areas).
        unsafe {
            let s = *spans.add(i);
            std::ptr::copy_nonoverlapping(
                base.add(s.src as usize),
                base.add(s.dst as usize),
                s.len as usize,
            );
        }
        i += job.stripes;
    }
}

/// Persistent host-thread pool executing window copy spans. With one
/// host thread (or for small windows) everything runs inline on the
/// coordinator; otherwise spans are striped round-robin across the
/// workers plus the coordinator behind one [`WindowGate`] epoch.
///
/// When built with `profiled = true` the pool additionally keeps host-time
/// telemetry: dispatch/inline decision counts, cumulative scatter/gather
/// wait on the coordinator, and per-stripe busy nanoseconds (stripe 0 is
/// the coordinator). The atomics live outside the `profiled = false` path
/// entirely, so the quiet configuration's copy loop is untouched.
pub(crate) struct ParPool {
    gate: Arc<WindowGate<CopyJob>>,
    workers: Vec<JoinHandle<()>>,
    profiled: bool,
    dispatches: AtomicU64,
    inline_copies: AtomicU64,
    gather_wait_ns: AtomicU64,
    /// Busy nanoseconds per stripe; index 0 is the coordinator.
    busy_ns: Arc<Vec<AtomicU64>>,
}

impl ParPool {
    /// Unprofiled pool (the engine always goes through
    /// [`ParPool::new_profiled`] with its hostprof's `ACTIVE`).
    #[cfg(test)]
    pub(crate) fn new(host_threads: usize) -> ParPool {
        ParPool::new_profiled(host_threads, false)
    }

    /// `host_threads == 0` sizes to the host; `1` means no workers (all
    /// copies inline). `profiled` switches on the pool's host-time
    /// telemetry.
    pub(crate) fn new_profiled(host_threads: usize, profiled: bool) -> ParPool {
        let threads = if host_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            host_threads
        };
        let gate: Arc<WindowGate<CopyJob>> = Arc::new(WindowGate::new());
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let workers = (1..threads)
            .map(|stripe| {
                let gate = Arc::clone(&gate);
                let busy_ns = Arc::clone(&busy_ns);
                std::thread::spawn(move || {
                    let mut epoch = 0;
                    while let Some(job) = gate.next_job(&mut epoch) {
                        if profiled {
                            let t0 = Instant::now();
                            run_stripe(job, stripe);
                            busy_ns[stripe]
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        } else {
                            run_stripe(job, stripe);
                        }
                        gate.finish_one();
                    }
                })
            })
            .collect();
        ParPool {
            gate,
            workers,
            profiled,
            dispatches: AtomicU64::new(0),
            inline_copies: AtomicU64::new(0),
            gather_wait_ns: AtomicU64::new(0),
            busy_ns,
        }
    }

    /// Execute every span (each a disjoint fromspace→tospace word copy).
    pub(crate) fn copy(&self, heap: &mut Heap, spans: &[CopySpan], threshold: usize) {
        let total: u64 = spans.iter().map(|s| u64::from(s.len)).sum();
        let words = heap.words_mut();
        if self.workers.is_empty() || (total as usize) < threshold {
            if self.profiled {
                self.inline_copies.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                for s in spans {
                    words.copy_within(s.src as usize..(s.src + s.len) as usize, s.dst as usize);
                }
                self.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return;
            }
            for s in spans {
                words.copy_within(s.src as usize..(s.src + s.len) as usize, s.dst as usize);
            }
            return;
        }
        debug_assert!(spans
            .iter()
            .all(|s| (s.src + s.len) as usize <= words.len()
                && (s.dst + s.len) as usize <= words.len()));
        let job = CopyJob {
            base: words.as_mut_ptr() as usize,
            spans: spans.as_ptr() as usize,
            n_spans: spans.len(),
            stripes: self.workers.len() + 1,
        };
        self.gate.dispatch(self.workers.len(), job);
        if self.profiled {
            self.dispatches.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            run_stripe(job, 0);
            self.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let t1 = Instant::now();
            self.gate.await_done();
            self.gather_wait_ns
                .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
        } else {
            run_stripe(job, 0);
            self.gate.await_done();
        }
    }

    /// Copies dispatched to the worker gate (profiled pools only).
    pub(crate) fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Copies run inline on the coordinator (profiled pools only).
    pub(crate) fn inline_copies(&self) -> u64 {
        self.inline_copies.load(Ordering::Relaxed)
    }

    /// Coordinator nanoseconds spent waiting in `await_done` after its
    /// own stripe finished (profiled pools only).
    pub(crate) fn gather_wait_ns(&self) -> u64 {
        self.gather_wait_ns.load(Ordering::Relaxed)
    }

    /// Busy nanoseconds per stripe, coordinator first (profiled pools
    /// only). Workers have quiesced whenever this is read: the engine
    /// harvests after the last `copy` returned, and `copy` gathers.
    pub(crate) fn worker_busy_ns(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        self.gate.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with(words: Vec<Word>) -> Heap {
        let mut heap = Heap::new(words.len() as u32 / 2);
        heap.words_mut()[..words.len()].copy_from_slice(&words);
        heap
    }

    #[test]
    fn pool_copies_match_inline_copies() {
        let n = 512u32;
        let src: Vec<Word> = (0..n * 2).map(|i| i.wrapping_mul(2654435761)).collect();
        let spans = [
            CopySpan {
                src: 0,
                dst: 300,
                len: 40,
            },
            CopySpan {
                src: 64,
                dst: 360,
                len: 1,
            },
            CopySpan {
                src: 100,
                dst: 380,
                len: 100,
            },
        ];
        let mut inline_heap = heap_with(src.clone());
        let inline_pool = ParPool::new(1);
        inline_pool.copy(&mut inline_heap, &spans, 0);
        let mut par_heap = heap_with(src);
        let par_pool = ParPool::new(4);
        par_pool.copy(&mut par_heap, &spans, 0);
        assert_eq!(inline_heap.words(), par_heap.words());
        // And the copied region actually changed.
        assert_eq!(&inline_heap.words()[300..340], &inline_heap.words()[0..40]);
    }

    /// Guard against silent degradation: if an engine or planner change
    /// ever stopped windows from opening at all, every bit-exactness
    /// test would pass vacuously. The compress preset in the Figure 6
    /// latency regime is window-rich by construction.
    #[test]
    fn windows_actually_fire_on_the_window_rich_regime() {
        use crate::config::{EngineKind, GcConfig};
        use crate::engine::SimCollector;
        use hwgc_memsim::MemConfig;
        use hwgc_workloads::{Preset, WorkloadSpec};

        let cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(20),
            engine: Some(EngineKind::Par),
            sparse: true,
            host_threads: 1,
            ..GcConfig::with_cores(16)
        };
        let mut heap = WorkloadSpec::new(Preset::Compress, 42).build();
        let before = WINDOWS_FIRED.load(std::sync::atomic::Ordering::Relaxed);
        SimCollector::new(cfg).collect(&mut heap);
        let fired = WINDOWS_FIRED.load(std::sync::atomic::Ordering::Relaxed) - before;
        assert!(
            fired >= 100,
            "expected a window-rich run, got {fired} windows"
        );
    }

    #[test]
    fn small_windows_stay_on_the_coordinator() {
        // Below the threshold the pool must not dispatch (no way to
        // observe directly, but the result must still be correct).
        let mut heap = heap_with((0..256).collect());
        let pool = ParPool::new(4);
        pool.copy(
            &mut heap,
            &[CopySpan {
                src: 3,
                dst: 200,
                len: 5,
            }],
            1000,
        );
        assert_eq!(&heap.words()[200..205], &[3, 4, 5, 6, 7]);
    }
}
