//! Collector configuration.

use hwgc_memsim::MemConfig;

/// Configuration of a simulated collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of coprocessor cores (the prototype supports 1–16).
    pub n_cores: usize,
    /// Memory-system timing model.
    pub mem: MemConfig,
    /// Ablation C (paper Section VI-B, javac discussion): read the mark
    /// bit *without* acquiring the header lock first, and only attempt a
    /// locking read if the mark bit is clear. Already-forwarded children —
    /// the common case for popular objects — then never contend on the
    /// header lock.
    pub test_before_lock: bool,
    /// Extension 1 (paper conclusions): distribute work at a granularity
    /// finer than whole objects. `Some(L)` lets a scan claim take at most
    /// `L` body words of a large object, so several cores can copy one
    /// object concurrently; the synchronization block tracks the
    /// outstanding chunks and the last finisher blackens. `None` is the
    /// paper's object-granularity baseline.
    pub line_split: Option<u32>,
    /// Test harness knob: permute the core tick order every cycle with
    /// this seed. The paper's SB arbitrates with a *static* priority
    /// (`None`, the default — cores tick in index order); a permuted order
    /// models any other legal arbiter and lets tests explore different
    /// interleavings of the same collection. Functional results must be
    /// identical either way; only stall attribution may shift.
    pub tick_permutation_seed: Option<u64>,
    /// Upper bound on simulated cycles before the engine assumes a model
    /// bug and panics with diagnostics.
    pub max_cycles: u64,
    /// What-if ablation knob: give the SB's `scan`/`free` registers one
    /// write port *per core*, so a same-cycle register write no longer
    /// blocks the next acquirer (the `scan_lock`/`free_lock` stall class
    /// loses its write-port-conflict share). Lock holds themselves are
    /// unchanged — claim and evacuation atomicity still rely on them.
    /// Not a paper configuration; used to validate the what-if predictor.
    pub multiport_sb: bool,
    /// Event-horizon fast-forward (default on): when every core is
    /// stalled on in-flight memory transactions and nothing else can
    /// change, the engine jumps to the next memory completion in one step
    /// instead of ticking every dead cycle. Bit-exact — identical
    /// `GcStats`, SB event stamps and trace rows — and automatically
    /// suppressed whenever a schedule policy, a mutator or tracing could
    /// observe the skipped cycles. `false` forces the naive per-cycle
    /// loop (the differential tests compare both).
    pub fast_forward: bool,
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            n_cores: 1,
            mem: MemConfig::default(),
            test_before_lock: false,
            line_split: None,
            tick_permutation_seed: None,
            multiport_sb: false,
            max_cycles: 2_000_000_000,
            fast_forward: true,
        }
    }
}

impl GcConfig {
    /// Convenience constructor for the common case.
    pub fn with_cores(n_cores: usize) -> GcConfig {
        GcConfig {
            n_cores,
            ..GcConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_core() {
        let c = GcConfig::default();
        assert_eq!(c.n_cores, 1);
        assert!(!c.test_before_lock);
    }

    #[test]
    fn with_cores_sets_count_only() {
        let c = GcConfig::with_cores(16);
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.mem, MemConfig::default());
    }
}
