//! Collector configuration.

use hwgc_memsim::MemConfig;

/// Configuration of a simulated collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of coprocessor cores (the prototype supports 1–16).
    pub n_cores: usize,
    /// Memory-system timing model.
    pub mem: MemConfig,
    /// Ablation C (paper Section VI-B, javac discussion): read the mark
    /// bit *without* acquiring the header lock first, and only attempt a
    /// locking read if the mark bit is clear. Already-forwarded children —
    /// the common case for popular objects — then never contend on the
    /// header lock.
    pub test_before_lock: bool,
    /// Extension 1 (paper conclusions): distribute work at a granularity
    /// finer than whole objects. `Some(L)` lets a scan claim take at most
    /// `L` body words of a large object, so several cores can copy one
    /// object concurrently; the synchronization block tracks the
    /// outstanding chunks and the last finisher blackens. `None` is the
    /// paper's object-granularity baseline.
    pub line_split: Option<u32>,
    /// Test harness knob: permute the core tick order every cycle with
    /// this seed. The paper's SB arbitrates with a *static* priority
    /// (`None`, the default — cores tick in index order); a permuted order
    /// models any other legal arbiter and lets tests explore different
    /// interleavings of the same collection. Functional results must be
    /// identical either way; only stall attribution may shift.
    pub tick_permutation_seed: Option<u64>,
    /// Upper bound on simulated cycles before the engine assumes a model
    /// bug and panics with diagnostics.
    pub max_cycles: u64,
    /// What-if ablation knob: give the SB's `scan`/`free` registers one
    /// write port *per core*, so a same-cycle register write no longer
    /// blocks the next acquirer (the `scan_lock`/`free_lock` stall class
    /// loses its write-port-conflict share). Lock holds themselves are
    /// unchanged — claim and evacuation atomicity still rely on them.
    /// Not a paper configuration; used to validate the what-if predictor.
    pub multiport_sb: bool,
    /// Event-horizon fast-forward (default on): when every core is
    /// stalled on in-flight memory transactions and nothing else can
    /// change, the engine jumps to the next memory completion in one step
    /// instead of ticking every dead cycle. Bit-exact — identical
    /// `GcStats`, SB event stamps and trace rows — and automatically
    /// suppressed whenever a schedule policy, a mutator or tracing could
    /// observe the skipped cycles. `false` forces the naive per-cycle
    /// loop (the differential tests compare both).
    pub fast_forward: bool,
    /// Sparse active-set engine (default on, `HWGC_SPARSE=0` in the
    /// environment flips the default off): cores whose next retry provably
    /// fails park on per-resource wake conditions — SB lock releases,
    /// memory retirements, or a computed wake cycle — and the clock jumps
    /// to the earliest wake instead of ticking every core every cycle.
    /// Per-cycle work becomes O(runnable) instead of O(n_cores). Bit-exact
    /// — identical `GcStats`, SB event stamps and trace rows, including
    /// under schedule policies — and automatically suppressed when a
    /// mutator runs (its ticks observe every cycle). `false` forces the
    /// naive per-cycle loop (the differential tests compare both).
    pub sparse: bool,
}

/// Parse the `HWGC_SPARSE` escape hatch: unset keeps the sparse engine
/// on; `0` / `false` / `off` / `no` (trimmed) disable it; anything else
/// leaves it on.
pub fn sparse_from(var: Option<&str>) -> bool {
    !matches!(
        var.map(str::trim),
        Some("0") | Some("false") | Some("off") | Some("no")
    )
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            n_cores: 1,
            mem: MemConfig::default(),
            test_before_lock: false,
            line_split: None,
            tick_permutation_seed: None,
            multiport_sb: false,
            max_cycles: 2_000_000_000,
            fast_forward: true,
            sparse: sparse_from(std::env::var("HWGC_SPARSE").ok().as_deref()),
        }
    }
}

impl GcConfig {
    /// Convenience constructor for the common case.
    pub fn with_cores(n_cores: usize) -> GcConfig {
        GcConfig {
            n_cores,
            ..GcConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_core() {
        let c = GcConfig::default();
        assert_eq!(c.n_cores, 1);
        assert!(!c.test_before_lock);
    }

    #[test]
    fn with_cores_sets_count_only() {
        let c = GcConfig::with_cores(16);
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.mem, MemConfig::default());
    }

    #[test]
    fn sparse_from_documents_every_input_class() {
        // Unset: on by default.
        assert!(sparse_from(None));
        // Explicit off spellings, with surrounding whitespace tolerated.
        for off in ["0", "false", "off", "no", " 0 ", "\tfalse\n"] {
            assert!(!sparse_from(Some(off)), "{off:?} should disable");
        }
        // Anything else (including empty and affirmative values): on.
        for on in ["", "1", "true", "on", "yes", "sparse", "OFF"] {
            assert!(sparse_from(Some(on)), "{on:?} should keep the default");
        }
    }
}
