//! Collector configuration.

use hwgc_memsim::MemConfig;

/// Configuration of a simulated collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of coprocessor cores (the prototype supports 1–16).
    pub n_cores: usize,
    /// Memory-system timing model.
    pub mem: MemConfig,
    /// Ablation C (paper Section VI-B, javac discussion): read the mark
    /// bit *without* acquiring the header lock first, and only attempt a
    /// locking read if the mark bit is clear. Already-forwarded children —
    /// the common case for popular objects — then never contend on the
    /// header lock.
    pub test_before_lock: bool,
    /// Extension 1 (paper conclusions): distribute work at a granularity
    /// finer than whole objects. `Some(L)` lets a scan claim take at most
    /// `L` body words of a large object, so several cores can copy one
    /// object concurrently; the synchronization block tracks the
    /// outstanding chunks and the last finisher blackens. `None` is the
    /// paper's object-granularity baseline.
    pub line_split: Option<u32>,
    /// Test harness knob: permute the core tick order every cycle with
    /// this seed. The paper's SB arbitrates with a *static* priority
    /// (`None`, the default — cores tick in index order); a permuted order
    /// models any other legal arbiter and lets tests explore different
    /// interleavings of the same collection. Functional results must be
    /// identical either way; only stall attribution may shift.
    pub tick_permutation_seed: Option<u64>,
    /// Upper bound on simulated cycles before the engine assumes a model
    /// bug and panics with diagnostics.
    pub max_cycles: u64,
    /// What-if ablation knob: give the SB's `scan`/`free` registers one
    /// write port *per core*, so a same-cycle register write no longer
    /// blocks the next acquirer (the `scan_lock`/`free_lock` stall class
    /// loses its write-port-conflict share). Lock holds themselves are
    /// unchanged — claim and evacuation atomicity still rely on them.
    /// Not a paper configuration; used to validate the what-if predictor.
    pub multiport_sb: bool,
    /// Event-horizon fast-forward (default on): when every core is
    /// stalled on in-flight memory transactions and nothing else can
    /// change, the engine jumps to the next memory completion in one step
    /// instead of ticking every dead cycle. Bit-exact — identical
    /// `GcStats`, SB event stamps and trace rows — and automatically
    /// suppressed whenever a schedule policy, a mutator or tracing could
    /// observe the skipped cycles. `false` forces the naive per-cycle
    /// loop (the differential tests compare both).
    pub fast_forward: bool,
    /// Sparse active-set engine (default on, `HWGC_SPARSE=0` in the
    /// environment flips the default off): cores whose next retry provably
    /// fails park on per-resource wake conditions — SB lock releases,
    /// memory retirements, or a computed wake cycle — and the clock jumps
    /// to the earliest wake instead of ticking every core every cycle.
    /// Per-cycle work becomes O(runnable) instead of O(n_cores). Bit-exact
    /// — identical `GcStats`, SB event stamps and trace rows, including
    /// under schedule policies — and automatically suppressed when a
    /// mutator runs (its ticks observe every cycle). `false` forces the
    /// naive per-cycle loop (the differential tests compare both).
    pub sparse: bool,
    /// Engine selection override. `None` (the default) derives the
    /// engine from the legacy `sparse` flag — [`EngineKind::Sparse`]
    /// when it is set, [`EngineKind::Naive`] otherwise — after
    /// consulting the `HWGC_ENGINE` environment knob (see
    /// [`engine_from`]). [`EngineKind::Par`] runs the sparse loop
    /// extended with conservative time windows executed by a host
    /// thread pool (see `engine::par` and DESIGN §10); like the other
    /// engines it is bit-exact, and it degrades to the plain sparse
    /// loop whenever a window cannot soundly open.
    pub engine: Option<EngineKind>,
    /// Host worker threads for [`EngineKind::Par`] (`HWGC_HOST_THREADS`
    /// in the environment): `0` (the default) means auto — one worker
    /// per available host core; `1` keeps every window on the
    /// coordinating thread.
    pub host_threads: usize,
    /// Minimum total words a window must copy before the par engine
    /// dispatches the copy to the worker pool instead of doing it
    /// inline (`HWGC_PAR_COPY_THRESHOLD`); windows below it are not
    /// worth a handshake.
    pub par_copy_threshold: usize,
}

/// Which simulation loop advances the collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Tick every core every cycle (with event-horizon fast-forward
    /// unless `fast_forward` is off).
    Naive,
    /// The sparse active-set loop (PR 5): O(runnable) per cycle.
    Sparse,
    /// The sparse loop plus host-thread-parallel conservative windows:
    /// when every core is parked mid-copy, the engine advances the
    /// copy streams to the window horizon in one step and fans the
    /// heap writes out across host threads.
    Par,
}

/// Parse the `HWGC_ENGINE` environment knob: `naive`, `sparse` or `par`
/// (ASCII case-insensitive, trimmed) select an engine; unset, empty or
/// anything unrecognized yields `None`, which defers to the legacy
/// `sparse` flag (`HWGC_SPARSE`).
pub fn engine_from(var: Option<&str>) -> Option<EngineKind> {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        Some("naive") => Some(EngineKind::Naive),
        Some("sparse") => Some(EngineKind::Sparse),
        Some("par") => Some(EngineKind::Par),
        _ => None,
    }
}

/// Parse the `HWGC_HOST_THREADS` environment knob: a positive integer
/// pins the worker count; unset, `0`, `auto` or anything unrecognized
/// means auto-size to the host.
pub fn host_threads_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse().ok()).unwrap_or(0)
}

/// Parse the `HWGC_SPARSE` escape hatch: unset keeps the sparse engine
/// on; `0` / `false` / `off` / `no` (trimmed) disable it; anything else
/// leaves it on.
pub fn sparse_from(var: Option<&str>) -> bool {
    !matches!(
        var.map(str::trim),
        Some("0") | Some("false") | Some("off") | Some("no")
    )
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            n_cores: 1,
            mem: MemConfig::default(),
            test_before_lock: false,
            line_split: None,
            tick_permutation_seed: None,
            multiport_sb: false,
            max_cycles: 2_000_000_000,
            fast_forward: true,
            sparse: sparse_from(std::env::var("HWGC_SPARSE").ok().as_deref()),
            engine: engine_from(std::env::var("HWGC_ENGINE").ok().as_deref()),
            host_threads: host_threads_from(std::env::var("HWGC_HOST_THREADS").ok().as_deref()),
            par_copy_threshold: std::env::var("HWGC_PAR_COPY_THRESHOLD")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(256),
        }
    }
}

impl GcConfig {
    /// Convenience constructor for the common case.
    pub fn with_cores(n_cores: usize) -> GcConfig {
        GcConfig {
            n_cores,
            ..GcConfig::default()
        }
    }

    /// The engine this configuration actually runs: the explicit
    /// [`GcConfig::engine`] override when present, else the legacy
    /// `sparse` flag's choice — with one measured exception. At a single
    /// simulated core the sparse loop's wake-admission bookkeeping costs
    /// more than it saves (the active set *is* the core; PR 5 recorded a
    /// ~6% regression there), so an unpinned single-core configuration
    /// runs the naive loop with event-horizon fast-forward instead. The
    /// engines are bit-exact, so the swap is invisible to every stat;
    /// pin `engine: Some(EngineKind::Sparse)` (or `HWGC_ENGINE=sparse`)
    /// to defeat the heuristic, e.g. in differential tests.
    pub fn effective_engine(&self) -> EngineKind {
        match self.engine {
            Some(kind) => kind,
            // Only while fast-forward is on: without it the naive loop
            // grinds every hollow cycle and loses by far more than 6%.
            None if self.sparse && self.n_cores == 1 && self.fast_forward => EngineKind::Naive,
            None if self.sparse => EngineKind::Sparse,
            None => EngineKind::Naive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_core() {
        let c = GcConfig::default();
        assert_eq!(c.n_cores, 1);
        assert!(!c.test_before_lock);
    }

    #[test]
    fn with_cores_sets_count_only() {
        let c = GcConfig::with_cores(16);
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.mem, MemConfig::default());
    }

    #[test]
    fn sparse_from_documents_every_input_class() {
        // Unset: on by default.
        assert!(sparse_from(None));
        // Explicit off spellings, with surrounding whitespace tolerated.
        for off in ["0", "false", "off", "no", " 0 ", "\tfalse\n"] {
            assert!(!sparse_from(Some(off)), "{off:?} should disable");
        }
        // Anything else (including empty and affirmative values): on.
        for on in ["", "1", "true", "on", "yes", "sparse", "OFF"] {
            assert!(sparse_from(Some(on)), "{on:?} should keep the default");
        }
    }

    #[test]
    fn engine_from_documents_every_input_class() {
        // The three engines, case-insensitive, whitespace-tolerant.
        assert_eq!(engine_from(Some("naive")), Some(EngineKind::Naive));
        assert_eq!(engine_from(Some("sparse")), Some(EngineKind::Sparse));
        assert_eq!(engine_from(Some("par")), Some(EngineKind::Par));
        assert_eq!(engine_from(Some(" PAR \n")), Some(EngineKind::Par));
        // Unset, empty, or unrecognized: defer to the legacy flag.
        assert_eq!(engine_from(None), None);
        assert_eq!(engine_from(Some("")), None);
        assert_eq!(engine_from(Some("parallel")), None);
    }

    #[test]
    fn effective_engine_defers_to_the_sparse_flag() {
        let base = GcConfig {
            engine: None,
            ..GcConfig::default()
        };
        let sparse_on = GcConfig {
            sparse: true,
            ..base
        };
        let sparse_off = GcConfig {
            sparse: false,
            ..base
        };
        // Single-core default: the naive loop wins (PR 5's recorded ~6%
        // sparse regression at 1 core), unless fast-forward is off or
        // the engine is pinned.
        assert_eq!(sparse_on.effective_engine(), EngineKind::Naive);
        assert_eq!(
            GcConfig {
                fast_forward: false,
                ..sparse_on
            }
            .effective_engine(),
            EngineKind::Sparse
        );
        assert_eq!(
            GcConfig {
                n_cores: 2,
                ..sparse_on
            }
            .effective_engine(),
            EngineKind::Sparse
        );
        assert_eq!(
            GcConfig {
                engine: Some(EngineKind::Sparse),
                ..sparse_on
            }
            .effective_engine(),
            EngineKind::Sparse
        );
        assert_eq!(sparse_off.effective_engine(), EngineKind::Naive);
        // The explicit override wins regardless of the legacy flag.
        for kind in [EngineKind::Naive, EngineKind::Sparse, EngineKind::Par] {
            let c = GcConfig {
                engine: Some(kind),
                ..sparse_off
            };
            assert_eq!(c.effective_engine(), kind);
        }
    }

    #[test]
    fn host_threads_from_documents_every_input_class() {
        assert_eq!(host_threads_from(None), 0);
        assert_eq!(host_threads_from(Some("4")), 4);
        assert_eq!(host_threads_from(Some(" 8 ")), 8);
        for auto in ["", "0", "auto", "-1", "many"] {
            assert_eq!(host_threads_from(Some(auto)), 0, "{auto:?}");
        }
    }
}
