//! Per-cycle core-arbitration policies.
//!
//! The engine ticks the cores once per simulated cycle; the *order* in
//! which they tick realizes the SB's arbitration. The paper's hardware
//! uses a static priority (lowest core index wins every contended lock),
//! which the engine reproduces by ticking in index order. Any other order
//! is an equally legal arbiter — the collector's three invariants must
//! hold under all of them — so the test harness parameterizes the order
//! through a [`SchedulePolicy`] and sweeps seeds to explore interleavings:
//!
//! * [`StaticPriority`] — index order, the paper's arbiter (the default),
//! * [`RandomOrder`] — a fresh seeded permutation every cycle
//!   (bit-compatible with the older `tick_permutation_seed` knob),
//! * [`Adversarial`] — an order chosen each cycle to maximize lock
//!   contention windows: cores *contending* for locks tick before the
//!   holders (so every contender samples the lock while it is still
//!   held), holders release last, and ties rotate pseudo-randomly so the
//!   winner of a contended header is not pinned to the lowest index.
//!
//! Policies only reorder whole-core ticks; they cannot express anything
//! the hardware could not do, so a functional difference under any policy
//! is a collector bug, not a harness artifact.

/// What the policy may observe about one core when choosing an order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreView {
    /// Fromspace header address the core is trying to lock this cycle
    /// (it is in the `ChildLock` state), if any.
    pub pending_header: Option<u32>,
    /// Header address the core currently holds locked, if any.
    pub holds_header: Option<u32>,
    /// Does the core hold the `scan` lock? (Never true at the cycle
    /// boundary in the current microprogram — scan critical sections are
    /// intra-tick — but recorded for policy generality.)
    pub holds_scan: bool,
    /// Does the core hold the `free` lock? (Same caveat as `holds_scan`.)
    pub holds_free: bool,
    /// Is the core's busy bit set (it owns a claimed object)?
    pub busy: bool,
}

/// Cycle-boundary snapshot handed to [`SchedulePolicy::arrange`].
#[derive(Debug)]
pub struct ScheduleView<'a> {
    /// The `scan` register.
    pub scan: u32,
    /// The `free` register.
    pub free: u32,
    /// Per-core state, indexed by core id.
    pub cores: &'a [CoreView],
}

/// A per-cycle arbitration policy: permutes the order in which the engine
/// ticks the cores.
pub trait SchedulePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Rearrange `order` (a permutation of `0..n_cores`) for this cycle.
    /// `order` arrives as the *previous* cycle's order (initially the
    /// identity), so a no-op keeps the static priority.
    fn arrange(&mut self, cycle: u64, view: &ScheduleView<'_>, order: &mut [usize]);
}

/// The paper's arbiter: cores tick in index order every cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPriority;

impl SchedulePolicy for StaticPriority {
    fn name(&self) -> &'static str {
        "static"
    }

    fn arrange(&mut self, _cycle: u64, _view: &ScheduleView<'_>, order: &mut [usize]) {
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i;
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A fresh uniformly random legal arbitration order every cycle
/// (Fisher–Yates over the persisted order, driven by an xorshift state —
/// bit-compatible with `GcConfig::tick_permutation_seed`).
#[derive(Debug, Clone, Copy)]
pub struct RandomOrder {
    state: u64,
}

impl RandomOrder {
    /// Policy seeded with `seed` (0 is mapped to a nonzero state).
    pub fn new(seed: u64) -> RandomOrder {
        RandomOrder { state: seed | 1 }
    }
}

impl SchedulePolicy for RandomOrder {
    fn name(&self) -> &'static str {
        "random"
    }

    fn arrange(&mut self, _cycle: u64, _view: &ScheduleView<'_>, order: &mut [usize]) {
        for i in (1..order.len()).rev() {
            let r = xorshift(&mut self.state);
            order.swap(i, (r % (i as u64 + 1)) as usize);
        }
    }
}

/// Contention-maximizing arbiter. Each cycle, cores are ranked:
///
/// 1. cores whose pending header lock is *currently held* by another core
///    (they tick first and are guaranteed to fail this cycle),
/// 2. other contenders and idle cores, shuffled,
/// 3. lock holders and busy cores last (locks stay held across as many
///    other ticks as possible; releases land after every failed attempt).
///
/// Ties rotate pseudo-randomly so that the winner of a contended resource
/// varies between cycles rather than following the static priority.
#[derive(Debug, Clone, Copy)]
pub struct Adversarial {
    state: u64,
}

impl Adversarial {
    /// Policy seeded with `seed` (0 is mapped to a nonzero state).
    pub fn new(seed: u64) -> Adversarial {
        Adversarial { state: seed | 1 }
    }
}

impl SchedulePolicy for Adversarial {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn arrange(&mut self, _cycle: u64, view: &ScheduleView<'_>, order: &mut [usize]) {
        let held = |addr: u32| view.cores.iter().any(|c| c.holds_header == Some(addr));
        let rank = |id: usize| -> u64 {
            let c = &view.cores[id];
            if c.pending_header.is_some_and(held) {
                0
            } else if c.holds_header.is_some() || c.holds_scan || c.holds_free || c.busy {
                2
            } else {
                1
            }
        };
        // Deterministic per-(cycle, core) tiebreak, advanced once per call
        // so consecutive cycles shuffle differently.
        let salt = xorshift(&mut self.state);
        order.sort_by_key(|&id| {
            let mut h = salt ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            (rank(id), h ^ (h >> 29))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_view(n: usize) -> Vec<CoreView> {
        vec![CoreView::default(); n]
    }

    fn is_permutation(order: &[usize]) -> bool {
        let mut seen = vec![false; order.len()];
        order
            .iter()
            .all(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true))
    }

    #[test]
    fn static_priority_restores_identity() {
        let cores = idle_view(4);
        let view = ScheduleView {
            scan: 0,
            free: 0,
            cores: &cores,
        };
        let mut order = vec![3, 1, 0, 2];
        StaticPriority.arrange(7, &view, &mut order);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_order_yields_permutations_and_varies() {
        let cores = idle_view(8);
        let view = ScheduleView {
            scan: 0,
            free: 0,
            cores: &cores,
        };
        let mut policy = RandomOrder::new(42);
        let mut order: Vec<usize> = (0..8).collect();
        let mut distinct = std::collections::HashSet::new();
        for cycle in 0..50 {
            policy.arrange(cycle, &view, &mut order);
            assert!(is_permutation(&order), "cycle {cycle}: {order:?}");
            distinct.insert(order.clone());
        }
        assert!(
            distinct.len() > 10,
            "only {} distinct orders",
            distinct.len()
        );
    }

    #[test]
    fn random_order_matches_legacy_inline_shuffle() {
        // The engine's old `tick_permutation_seed` code path: xorshift
        // state seeded with `seed | 1`, Fisher–Yates every cycle over the
        // persisted order. RandomOrder must replay it exactly so existing
        // seeds reproduce the same interleavings.
        let seed: u64 = 12345;
        let n = 6;
        let mut legacy: Vec<usize> = (0..n).collect();
        let mut rng = seed | 1;
        let cores = idle_view(n);
        let view = ScheduleView {
            scan: 0,
            free: 0,
            cores: &cores,
        };
        let mut policy = RandomOrder::new(seed);
        let mut order: Vec<usize> = (0..n).collect();
        for cycle in 0..100 {
            for i in (1..legacy.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                legacy.swap(i, (rng % (i as u64 + 1)) as usize);
            }
            policy.arrange(cycle, &view, &mut order);
            assert_eq!(order, legacy, "diverged at cycle {cycle}");
        }
    }

    #[test]
    fn adversarial_puts_contenders_first_and_holders_last() {
        // Core 2 holds header 0xA0; cores 0 and 3 want it; core 1 is idle.
        let mut cores = idle_view(4);
        cores[0].pending_header = Some(0xA0);
        cores[2].holds_header = Some(0xA0);
        cores[2].busy = true;
        cores[3].pending_header = Some(0xA0);
        let view = ScheduleView {
            scan: 0,
            free: 0,
            cores: &cores,
        };
        let mut policy = Adversarial::new(1);
        let mut order: Vec<usize> = (0..4).collect();
        for cycle in 0..20 {
            policy.arrange(cycle, &view, &mut order);
            assert!(is_permutation(&order));
            let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
            assert!(
                pos(0) < pos(2),
                "cycle {cycle}: contender after holder: {order:?}"
            );
            assert!(
                pos(3) < pos(2),
                "cycle {cycle}: contender after holder: {order:?}"
            );
            assert_eq!(pos(2), 3, "cycle {cycle}: holder must tick last: {order:?}");
        }
    }

    #[test]
    fn adversarial_rotates_ties() {
        let cores = idle_view(8);
        let view = ScheduleView {
            scan: 0,
            free: 0,
            cores: &cores,
        };
        let mut policy = Adversarial::new(99);
        let mut order: Vec<usize> = (0..8).collect();
        let mut distinct = std::collections::HashSet::new();
        for cycle in 0..50 {
            policy.arrange(cycle, &view, &mut order);
            assert!(is_permutation(&order));
            distinct.insert(order.clone());
        }
        assert!(
            distinct.len() > 10,
            "ties do not rotate: {} orders",
            distinct.len()
        );
    }
}
