//! Extension 3 (paper Section V-B): running the collection cycle
//! *concurrently* with the main processor.
//!
//! "As our primary focus lies on parallelizing GC, the coprocessor
//! currently stops the main processor for the whole collection cycle.
//! However, as a next step, we intend to allow the multi-core coprocessor
//! to run concurrently to the main processor."
//!
//! The model adds one *mutator* — the main processor — to the engine's
//! cycle loop, executing a synthetic access pattern over its register
//! file of object handles while the GC cores collect. The machinery that
//! makes this safe is the hardware **read barrier** of the authors' prior
//! work (Meyer, ISMM'06): because objects and pointers are known at the
//! hardware level, every mutator access is checked against the tricolour
//! state:
//!
//! * a pointer loaded from a **black** object is already translated;
//! * an access to a **gray** frame is redirected through its backlink to
//!   the fromspace original (the body has not been copied yet);
//! * a fromspace pointer obtained that way is translated through the
//!   child's header — evacuating the child on the spot if needed, with
//!   the same header/free locking protocol the GC cores use (the mutator
//!   participates in the synchronization block with its own slot and
//!   busy bit, which also keeps termination detection sound);
//! * allocation during collection is **black**: the new object is safe
//!   from the wavefront by construction.
//!
//! The mutator cannot create pointers the collector misses: it only loads
//! pointers (which the barrier translates), writes *data* words (to black
//! objects — it waits out gray ones), and allocates black objects whose
//! pointer slots start null. Its registers are appended to the root set
//! at the end of the cycle so everything it holds stays live.
//!
//! Mutator accesses are charged fixed costs (the main processor has its
//! own caches and port into the memory system; we model the latency, not
//! the bandwidth interference — see DESIGN.md §16).

use hwgc_heap::header::Header;
use hwgc_heap::{Addr, Color, Heap, NULL};
use hwgc_memsim::HeaderFifo;
use hwgc_sync::SyncBlock;

/// Configuration of the concurrent mutator.
#[derive(Debug, Clone, Copy)]
pub struct MutatorConfig {
    /// Register-file size (live handles the mutator cycles through).
    pub registers: usize,
    /// One in `alloc_every` actions is an allocation (0 = never allocate).
    pub alloc_every: u32,
    /// Shape of objects allocated during collection.
    pub alloc_pi: u32,
    /// Data words of allocated objects (≥ 1, for the id stamp).
    pub alloc_delta: u32,
    /// One in `write_every` actions is a data write (0 = never write).
    pub write_every: u32,
    /// RNG seed for the access pattern.
    pub seed: u64,
}

impl Default for MutatorConfig {
    fn default() -> MutatorConfig {
        MutatorConfig {
            registers: 8,
            alloc_every: 16,
            alloc_pi: 2,
            alloc_delta: 4,
            write_every: 8,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

/// What the mutator accomplished while the collector ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutatorStats {
    /// Completed actions (loads, writes, allocations).
    pub actions: u64,
    /// Pointer loads performed.
    pub pointer_loads: u64,
    /// Data loads performed.
    pub data_loads: u64,
    /// Data writes performed.
    pub data_writes: u64,
    /// Writes that went to both copies because the target was mid-copy
    /// (the dual-write barrier).
    pub dual_writes: u64,
    /// Objects allocated (black) during the collection.
    pub allocations: u64,
    /// Accesses to gray frames redirected through the backlink.
    pub backlink_redirects: u64,
    /// Fromspace pointers translated via an existing forwarding pointer.
    pub barrier_forwards: u64,
    /// Fromspace pointers whose targets the barrier had to evacuate.
    pub barrier_evacuations: u64,
    /// Cycles spent waiting (gray write targets, contended locks).
    pub stall_cycles: u64,
    /// Longest run of consecutive stall cycles — the mutator's worst-case
    /// pause. The architecture's real-time lineage (Meyer's prior work)
    /// promises pauses "never exceeding a couple of hundred clock
    /// cycles"; the paper's final sentence plans to combine that with
    /// this paper's parallel collector. This metric checks the combination.
    pub max_pause_cycles: u64,
    /// Cycles spent in fixed access latencies.
    pub busy_cycles: u64,
}

impl MutatorStats {
    /// Fraction of the collection during which the mutator made progress
    /// (busy or completing actions) rather than waiting.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total_cycles as f64
        }
    }
}

enum Pending {
    /// Waiting for the child's header lock (barrier evacuation path).
    BarrierLock { child: Addr, reg: usize },
    /// Waiting for the free lock (allocation or barrier evacuation).
    FreeLock { action: FreeAction },
}

enum FreeAction {
    Alloc { reg: usize },
    Evacuate { child: Addr, reg: usize },
}

/// The simulated main processor.
pub struct MutatorSm {
    cfg: MutatorConfig,
    /// Register file of tospace handles (NULL when empty).
    pub regs: Vec<Addr>,
    /// Objects allocated during this collection.
    pub allocated: Vec<Addr>,
    rng: u64,
    cooldown: u32,
    pending: Option<Pending>,
    counter: u64,
    /// The mutator's slot in the synchronization block (== n_gc_cores).
    sb_slot: usize,
    /// Consecutive stall cycles in the current pause.
    stall_run: u64,
    pub stats: MutatorStats,
}

impl MutatorSm {
    /// Mutator whose registers start at the (already evacuated) roots.
    pub fn new(cfg: MutatorConfig, roots: &[Addr], sb_slot: usize) -> MutatorSm {
        assert!(cfg.registers >= 1);
        assert!(
            cfg.alloc_delta >= 1,
            "allocated objects carry an id in data[0]"
        );
        let mut regs = vec![NULL; cfg.registers];
        for (i, slot) in regs.iter_mut().enumerate() {
            if !roots.is_empty() {
                *slot = roots[i % roots.len()];
            }
        }
        MutatorSm {
            cfg,
            regs,
            allocated: Vec::new(),
            rng: cfg.seed | 1,
            cooldown: 0,
            pending: None,
            counter: 0,
            sb_slot,
            stall_run: 0,
            stats: MutatorStats::default(),
        }
    }

    fn rand(&mut self) -> u64 {
        // xorshift64*: deterministic, no external dependency.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn random_reg(&mut self) -> usize {
        (self.rand() % self.regs.len() as u64) as usize
    }

    /// One mutator clock cycle, interleaved with the GC cores' ticks.
    pub fn tick(&mut self, heap: &mut Heap, sb: &mut SyncBlock, fifo: &mut HeaderFifo) {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.stats.busy_cycles += 1;
            return;
        }
        if let Some(pending) = self.pending.take() {
            self.retry(pending, heap, sb, fifo);
            return;
        }
        self.counter += 1;
        let c = self.cfg;
        if c.alloc_every > 0 && self.counter.is_multiple_of(c.alloc_every as u64) {
            self.start_alloc(heap, sb, fifo);
        } else if c.write_every > 0 && self.counter.is_multiple_of(c.write_every as u64) {
            self.start_write(heap, sb);
        } else if self.counter.is_multiple_of(3) {
            self.data_load(heap);
        } else {
            self.pointer_load(heap, sb, fifo);
        }
    }

    fn retry(
        &mut self,
        pending: Pending,
        heap: &mut Heap,
        sb: &mut SyncBlock,
        fifo: &mut HeaderFifo,
    ) {
        match pending {
            Pending::BarrierLock { child, reg } => self.barrier_lock(heap, sb, fifo, child, reg),
            Pending::FreeLock { action } => self.take_free(heap, sb, fifo, action),
        }
    }

    // --- loads ----------------------------------------------------------

    fn pointer_load(&mut self, heap: &mut Heap, sb: &mut SyncBlock, fifo: &mut HeaderFifo) {
        let reg = self.random_reg();
        let obj = self.regs[reg];
        if obj == NULL {
            self.finish(1);
            return;
        }
        let h = heap.header(obj);
        if h.pi == 0 {
            self.finish(1);
            return;
        }
        let slot = (self.rand() % h.pi as u64) as u32;
        self.stats.pointer_loads += 1;
        match h.color {
            Color::Black => {
                // Already translated: load and dereference directly.
                let val = heap.ptr(obj, slot);
                if val != NULL {
                    debug_assert!(heap.in_tospace(val), "black object holds untranslated ptr");
                    let dst = self.random_reg();
                    self.regs[dst] = val;
                }
                self.finish(2);
            }
            Color::Gray => {
                // Read barrier: fetch the raw pointer from the fromspace
                // original via the backlink, then translate it.
                self.stats.backlink_redirects += 1;
                let raw = heap.word(h.link + 2 + slot);
                if raw == NULL {
                    self.finish(3);
                    return;
                }
                debug_assert!(heap.in_fromspace(raw));
                let reg = self.random_reg();
                self.barrier_lock(heap, sb, fifo, raw, reg);
            }
            Color::White => unreachable!("mutator handle to a white tospace object"),
        }
    }

    fn data_load(&mut self, heap: &mut Heap) {
        let reg = self.random_reg();
        let obj = self.regs[reg];
        if obj == NULL {
            self.finish(1);
            return;
        }
        let h = heap.header(obj);
        if h.delta == 0 {
            self.finish(1);
            return;
        }
        let slot = (self.rand() % h.delta as u64) as u32;
        self.stats.data_loads += 1;
        match h.color {
            Color::Black => {
                let _ = heap.data(obj, slot);
                self.finish(2);
            }
            Color::Gray => {
                // Serve the load from the fromspace original.
                self.stats.backlink_redirects += 1;
                let _ = heap.word(h.link + 2 + h.pi + slot);
                self.finish(3);
            }
            Color::White => unreachable!(),
        }
    }

    // --- read barrier: translate / evacuate a fromspace pointer ----------

    fn barrier_lock(
        &mut self,
        heap: &mut Heap,
        sb: &mut SyncBlock,
        fifo: &mut HeaderFifo,
        child: Addr,
        reg: usize,
    ) {
        // The busy bit keeps termination detection sound: the collector
        // must not declare the cycle finished while the barrier is about
        // to create a new gray frame.
        sb.set_busy(self.sb_slot);
        if !sb.try_lock_header(self.sb_slot, child) {
            self.record_stall();
            self.pending = Some(Pending::BarrierLock { child, reg });
            return;
        }
        let h = heap.header(child);
        if h.marked {
            self.stats.barrier_forwards += 1;
            sb.unlock_header(self.sb_slot);
            sb.clear_busy(self.sb_slot);
            self.regs[reg] = h.link;
            self.finish(2);
            return;
        }
        self.take_free(heap, sb, fifo, FreeAction::Evacuate { child, reg });
    }

    fn take_free(
        &mut self,
        heap: &mut Heap,
        sb: &mut SyncBlock,
        fifo: &mut HeaderFifo,
        action: FreeAction,
    ) {
        if !sb.try_acquire_free(self.sb_slot) {
            self.record_stall();
            self.pending = Some(Pending::FreeLock { action });
            return;
        }
        match action {
            FreeAction::Evacuate { child, reg } => {
                let h = heap.header(child);
                let dst = sb.free();
                let size = h.size_words();
                assert!(dst + size <= heap.to_limit(), "tospace overflow");
                sb.set_free(self.sb_slot, dst + size);
                sb.release_free(self.sb_slot);
                heap.set_header(dst, Header::gray(h.pi, h.delta, child));
                heap.set_header(child, Header::forwarded(h.pi, h.delta, dst));
                let (w0, w1) = Header::gray(h.pi, h.delta, child).encode();
                let _ = fifo.push(dst, w0, w1);
                sb.unlock_header(self.sb_slot);
                sb.clear_busy(self.sb_slot);
                self.stats.barrier_evacuations += 1;
                self.regs[reg] = dst;
                self.finish(4);
            }
            FreeAction::Alloc { reg } => {
                let c = self.cfg;
                let dst = sb.free();
                let size = 2 + c.alloc_pi + c.alloc_delta;
                assert!(dst + size <= heap.to_limit(), "tospace overflow");
                sb.set_free(self.sb_slot, dst + size);
                sb.release_free(self.sb_slot);
                // Allocate black: safe from the wavefront by construction.
                // `scan` must skip it, so it must look like a completed
                // object — which a black header provides.
                heap.set_header(dst, Header::black(c.alloc_pi, c.alloc_delta));
                for i in 0..c.alloc_pi {
                    heap.set_word(dst + 2 + i, NULL);
                }
                for i in 0..c.alloc_delta {
                    // Unique id stamp (the frame address) for the verifier.
                    heap.set_word(dst + 2 + c.alloc_pi + i, if i == 0 { dst } else { 0 });
                }
                sb.clear_busy(self.sb_slot);
                self.stats.allocations += 1;
                self.allocated.push(dst);
                self.regs[reg] = dst;
                self.finish(3);
            }
        }
    }

    // --- writes and allocation ------------------------------------------

    fn start_write(&mut self, heap: &mut Heap, sb: &mut SyncBlock) {
        let reg = self.random_reg();
        let obj = self.regs[reg];
        if obj == NULL {
            self.finish(1);
            return;
        }
        let h = heap.header(obj);
        if h.delta == 0 {
            self.finish(1);
            return;
        }
        let slot = (self.rand() % h.delta as u64) as u32;
        self.do_write(heap, sb, obj, slot);
    }

    fn do_write(&mut self, heap: &mut Heap, sb: &mut SyncBlock, obj: Addr, slot: u32) {
        let h = heap.header(obj);
        match h.color {
            Color::Black => {
                // "Touch" write: store the value already present.
                // Exercises the full barrier path while keeping the
                // snapshot verifier exact.
                let v = heap.data(obj, slot);
                heap.set_data(obj, slot, v);
                self.stats.data_writes += 1;
                self.finish(2);
            }
            Color::Gray => {
                // Writing a gray object: the fromspace original is always
                // written through the backlink (the body copy will carry
                // it over if it has not passed this word yet). If the
                // frame has already been claimed by the wavefront (the
                // SB's scan register is readable by everyone, so the
                // hardware can tell), the word may already have been
                // copied, so the write goes to *both* copies — the
                // dual-write barrier used by concurrent copying designs.
                // Either way the mutator never waits for a body copy.
                let unclaimed = obj > sb.scan() || (obj == sb.scan() && sb.scan_chunk_off() == 0);
                let from_addr = h.link + 2 + h.pi + slot;
                let v = heap.word(from_addr);
                heap.set_word(from_addr, v);
                self.stats.backlink_redirects += 1;
                if !unclaimed {
                    heap.set_word(obj + 2 + h.pi + slot, v);
                    self.stats.dual_writes += 1;
                }
                self.stats.data_writes += 1;
                self.finish(3);
            }
            Color::White => unreachable!(),
        }
    }

    fn start_alloc(&mut self, heap: &mut Heap, sb: &mut SyncBlock, fifo: &mut HeaderFifo) {
        sb.set_busy(self.sb_slot);
        let reg = self.random_reg();
        self.take_free(heap, sb, fifo, FreeAction::Alloc { reg });
    }

    fn record_stall(&mut self) {
        self.stats.stall_cycles += 1;
        self.stall_run += 1;
        self.stats.max_pause_cycles = self.stats.max_pause_cycles.max(self.stall_run);
    }

    fn finish(&mut self, cost: u32) {
        self.stall_run = 0;
        self.stats.actions += 1;
        self.stats.busy_cycles += 1;
        self.cooldown = cost.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MutatorConfig::default();
        assert!(c.registers >= 1);
        assert!(c.alloc_delta >= 1);
    }

    #[test]
    fn registers_seeded_from_roots() {
        let m = MutatorSm::new(MutatorConfig::default(), &[10, 20], 4);
        assert_eq!(m.regs.len(), 8);
        assert_eq!(m.regs[0], 10);
        assert_eq!(m.regs[1], 20);
        assert_eq!(m.regs[2], 10);
    }

    #[test]
    fn empty_roots_leave_null_registers() {
        let m = MutatorSm::new(MutatorConfig::default(), &[], 1);
        assert!(m.regs.iter().all(|&r| r == NULL));
    }

    #[test]
    fn utilization_bounds() {
        let s = MutatorStats {
            busy_cycles: 50,
            ..MutatorStats::default()
        };
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }
}
