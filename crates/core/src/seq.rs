//! Sequential Cheney reference collector (paper Section II).
//!
//! This is the functional oracle for the simulated parallel collector: the
//! paper's 1-core coprocessor configuration "performs like the original
//! sequential implementation of Cheney's algorithm". It has no timing
//! model; it simply performs a correct copying collection and reports what
//! it copied. Integration tests compare the parallel collector's tospace
//! against this collector's output on a clone of the same heap.

use hwgc_heap::header::Header;
use hwgc_heap::{Addr, Heap, NULL};

/// Result of a sequential collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqOutcome {
    /// Final allocation frontier in tospace.
    pub free: Addr,
    /// Objects copied.
    pub objects_copied: u64,
    /// Words copied (headers included).
    pub words_copied: u64,
    /// Pointer slots visited (≈ the amount of tracing work).
    pub pointers_visited: u64,
}

/// The sequential Cheney collector.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqCheney;

impl SeqCheney {
    /// Create a collector.
    pub fn new() -> SeqCheney {
        SeqCheney
    }

    /// Run one collection cycle: flip the spaces, evacuate everything
    /// reachable from the roots into tospace, redirect the roots and hand
    /// the allocation frontier back to the mutator.
    pub fn collect(&self, heap: &mut Heap) -> SeqOutcome {
        heap.flip();
        let mut scan = heap.to_base();
        let mut free = heap.to_base();
        let mut out = SeqOutcome {
            free,
            objects_copied: 0,
            words_copied: 0,
            pointers_visited: 0,
        };

        for i in 0..heap.roots().len() {
            let r = heap.roots()[i];
            let fwd = evacuate(heap, &mut free, &mut out, r);
            heap.set_root(i, fwd);
        }

        while scan < free {
            let h = heap.header(scan);
            debug_assert_eq!(h.color, hwgc_heap::Color::Gray);
            let backlink = h.link;
            // Copy the body from the fromspace original, translating the
            // pointer area as we go (the pointer area precedes the data
            // area, exactly as the hardware streams it).
            for slot in 0..h.pi {
                out.pointers_visited += 1;
                let child = heap.word(backlink + 2 + slot);
                let fwd = evacuate(heap, &mut free, &mut out, child);
                heap.set_word(scan + 2 + slot, fwd);
            }
            for slot in 0..h.delta {
                let w = heap.word(backlink + 2 + h.pi + slot);
                heap.set_word(scan + 2 + h.pi + slot, w);
            }
            heap.set_header(scan, Header::black(h.pi, h.delta));
            scan += h.size_words();
        }

        heap.set_alloc_ptr(free);
        out.free = free;
        out
    }
}

/// Evacuate `obj` if it is an unmarked fromspace object: allocate a gray
/// frame at `free`, install the forwarding pointer in the fromspace header
/// and the backlink in the frame header (paper Fig. 4, state "Gray 1").
/// Returns the tospace address (or `obj` unchanged when null/already
/// forwarded).
fn evacuate(heap: &mut Heap, free: &mut Addr, out: &mut SeqOutcome, obj: Addr) -> Addr {
    if obj == NULL {
        return NULL;
    }
    debug_assert!(heap.in_fromspace(obj), "pointer {obj} escapes fromspace");
    let h = heap.header(obj);
    if h.marked {
        return h.link;
    }
    let dst = *free;
    *free += h.size_words();
    assert!(*free <= heap.to_limit(), "tospace overflow");
    heap.set_header(dst, Header::gray(h.pi, h.delta, obj));
    heap.set_header(obj, Header::forwarded(h.pi, h.delta, dst));
    out.objects_copied += 1;
    out.words_copied += h.size_words() as u64;
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{verify_collection, GraphBuilder, Snapshot};

    #[test]
    fn collects_diamond_with_garbage() {
        let mut heap = Heap::new(400);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let l = b.add(1, 2).unwrap();
        let rr = b.add(1, 2).unwrap();
        let bot = b.add(0, 4).unwrap();
        let dead = b.add(1, 8).unwrap();
        b.link(r, 0, l);
        b.link(r, 1, rr);
        b.link(l, 0, bot);
        b.link(rr, 0, bot);
        b.link(dead, 0, bot); // garbage pointing at live data
        b.root(r);
        let snap = Snapshot::capture(&heap);
        let out = SeqCheney::new().collect(&mut heap);
        assert_eq!(out.objects_copied, 4);
        assert_eq!(out.pointers_visited, 4);
        verify_collection(&heap, out.free, &snap).unwrap();
    }

    #[test]
    fn collects_cycle() {
        let mut heap = Heap::new(200);
        let mut b = GraphBuilder::new(&mut heap);
        let a = b.add(1, 1).unwrap();
        let c = b.add(1, 1).unwrap();
        b.link(a, 0, c);
        b.link(c, 0, a);
        b.root(a);
        let snap = Snapshot::capture(&heap);
        let out = SeqCheney::new().collect(&mut heap);
        assert_eq!(out.objects_copied, 2);
        verify_collection(&heap, out.free, &snap).unwrap();
    }

    #[test]
    fn self_loop_and_shared_root() {
        let mut heap = Heap::new(200);
        let mut b = GraphBuilder::new(&mut heap);
        let a = b.add(2, 1).unwrap();
        b.link(a, 0, a);
        b.root(a);
        b.root(a); // same object rooted twice
        let snap = Snapshot::capture(&heap);
        let out = SeqCheney::new().collect(&mut heap);
        assert_eq!(out.objects_copied, 1);
        verify_collection(&heap, out.free, &snap).unwrap();
        // Both roots must point at the same copy.
        assert_eq!(heap.roots()[0], heap.roots()[1]);
    }

    #[test]
    fn empty_root_set_copies_nothing() {
        let mut heap = Heap::new(100);
        let out = SeqCheney::new().collect(&mut heap);
        assert_eq!(out.objects_copied, 0);
        assert_eq!(out.free, heap.to_base());
    }

    #[test]
    fn back_to_back_cycles() {
        // Two consecutive collections must both verify: the second cycle
        // exercises stale-word handling in the re-used semispace.
        let mut heap = Heap::new(400);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(1, 3).unwrap();
        let c = b.add(0, 5).unwrap();
        b.link(r, 0, c);
        b.root(r);
        let snap1 = Snapshot::capture(&heap);
        let out1 = SeqCheney::new().collect(&mut heap);
        verify_collection(&heap, out1.free, &snap1).unwrap();

        let snap2 = Snapshot::capture(&heap);
        let out2 = SeqCheney::new().collect(&mut heap);
        verify_collection(&heap, out2.free, &snap2).unwrap();
        assert_eq!(out1.words_copied, out2.words_copied);
    }

    #[test]
    fn mutation_between_cycles() {
        let mut heap = Heap::new(600);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let x = b.add(0, 2).unwrap();
        let y = b.add(0, 2).unwrap();
        b.link(r, 0, x);
        b.link(r, 1, y);
        b.root(r);
        let out1 = SeqCheney::new().collect(&mut heap);
        assert_eq!(out1.objects_copied, 3);

        // Drop y, allocate a fresh object pointing nowhere.
        let root_addr = heap.roots()[0];
        heap.set_ptr(root_addr, 1, NULL);
        let fresh = heap.alloc(0, 3).unwrap();
        heap.set_data(fresh, 0, 77);
        heap.add_root(fresh);

        let snap = Snapshot::capture(&heap);
        let out2 = SeqCheney::new().collect(&mut heap);
        assert_eq!(out2.objects_copied, 3); // r, x, fresh
        verify_collection(&heap, out2.free, &snap).unwrap();
    }
}
