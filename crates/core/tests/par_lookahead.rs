//! Lookahead-conservativity property tests for the parallel window
//! engine (`EngineKind::Par`).
//!
//! A window is sound only if its published horizon `E` is a conservative
//! lower bound on the next cross-core coupling: every in-service retire
//! of a non-kernel core, every success tick of a kernel stream, and the
//! first oversubscribed queue tick must all lie beyond the cut (see
//! `engine::par`). If any planned window ever overruns that bound — a
//! lookahead that was *not* a conservative lower bound — some core's
//! observable timeline shifts: a wake lands a cycle early or late, a
//! stall tally splits differently, a queue statistic counts a tick that
//! never was. The shadow single-thread sparse engine ticks through the
//! same cycles event by event and cannot overrun anything, so full
//! `GcStats` equality (per-core, per-reason stall breakdowns included)
//! plus heap-image equality on the same graph *is* the conservativity
//! assertion, explored here across proptest-drawn graphs, core counts,
//! latency/bandwidth regimes, and host-thread counts.

use hwgc_core::{EngineKind, GcConfig, SimCollector};
use hwgc_heap::{verify_collection, GraphBuilder, Heap, Snapshot};
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use proptest::prelude::*;

/// One object: `pi` pointer slots, `delta` data words. `delta` is drawn
/// large enough that multi-word copy runs (the window kernel) are common.
type Node = (u32, u32);
/// One edge: (parent index, slot index, child index), reduced modulo the
/// actual node/slot counts.
type Edge = (usize, u32, usize);

#[derive(Debug, Clone)]
struct Shape {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    roots: Vec<usize>,
}

fn shapes() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec((0u32..4, 1u32..24), 1..32),
        prop::collection::vec((0usize..32, 0u32..4, 0usize..32), 0..64),
        prop::collection::vec(0usize..32, 1..6),
    )
        .prop_map(|(nodes, edges, roots)| Shape {
            nodes,
            edges,
            roots,
        })
}

fn build(shape: &Shape) -> Heap {
    let mut heap = Heap::new(4096);
    let mut b = GraphBuilder::new(&mut heap);
    let mut ids = Vec::with_capacity(shape.nodes.len());
    for &(pi, delta) in &shape.nodes {
        ids.push(b.add(pi, delta).expect("graph exceeds fromspace"));
    }
    for &(parent, slot, child) in &shape.edges {
        let p = parent % ids.len();
        let pi = shape.nodes[p].0;
        if pi > 0 {
            b.link(ids[p], slot % pi, ids[child % ids.len()]);
        }
    }
    for &root in &shape.roots {
        b.root(ids[root % ids.len()]);
    }
    heap
}

fn mem(latency: u32, bandwidth: u32, extra: u32) -> MemConfig {
    MemConfig {
        latency,
        bandwidth,
        extra_latency: extra,
        ..MemConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Windowed engine vs the sparse shadow across the whole quiet-mode
    /// parameter space: graphs × cores × latency × bandwidth × artificial
    /// latency × host threads. Bandwidth down to 1 exercises the
    /// feasibility cut; `extra` up to 24 the window-rich regime where
    /// nearly every copy stream is park-bound.
    #[test]
    fn window_horizons_are_conservative(
        shape in shapes(),
        cores in 1usize..=16,
        latency in 0u32..8,
        bandwidth in 1u32..12,
        extra in proptest::strategy::Union::new(vec![
            proptest::strategy::boxed(Just(0u32)),
            proptest::strategy::boxed(1u32..24),
        ]),
        host_threads in 1usize..=4,
    ) {
        let sparse_cfg = GcConfig {
            mem: mem(latency, bandwidth, extra),
            engine: Some(EngineKind::Sparse),
            sparse: true,
            ..GcConfig::with_cores(cores)
        };
        let par_cfg = GcConfig {
            engine: Some(EngineKind::Par),
            host_threads,
            par_copy_threshold: 1,
            ..sparse_cfg
        };
        let mut par_heap = build(&shape);
        let snap = Snapshot::capture(&par_heap);
        let par = SimCollector::new(par_cfg).collect(&mut par_heap);
        let mut sparse_heap = build(&shape);
        let sparse = SimCollector::new(sparse_cfg).collect(&mut sparse_heap);
        prop_assert_eq!(
            &par.stats, &sparse.stats,
            "par diverged from the sparse shadow ({cores} cores, lat {latency}, bw {bandwidth}, +{extra}, {host_threads} host threads)"
        );
        prop_assert_eq!(par.free, sparse.free);
        prop_assert_eq!(
            par_heap.words(), sparse_heap.words(),
            "window copies left a different heap image"
        );
        // The collection must also be correct, not merely consistent.
        verify_collection(&par_heap, par.free, &snap).unwrap();
    }

    /// The DRAM backend never reports `window_ready`, so under it the par
    /// engine must degrade to the plain sparse loop — same shadow
    /// comparison, zero windows, still bit-exact.
    #[test]
    fn par_is_exact_under_the_dram_backend(
        shape in shapes(),
        cores in 1usize..=16,
        extra in 0u32..12,
        closed_page in 0u8..2,
    ) {
        let backend = MemBackendKind::Dram(DramConfig {
            page_policy: if closed_page == 1 { PagePolicy::Closed } else { PagePolicy::Open },
            ..DramConfig::default()
        });
        let sparse_cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(extra).with_backend(backend),
            engine: Some(EngineKind::Sparse),
            sparse: true,
            ..GcConfig::with_cores(cores)
        };
        let par_cfg = GcConfig {
            engine: Some(EngineKind::Par),
            host_threads: 2,
            par_copy_threshold: 1,
            ..sparse_cfg
        };
        let mut par_heap = build(&shape);
        let par = SimCollector::new(par_cfg).collect(&mut par_heap);
        let mut sparse_heap = build(&shape);
        let sparse = SimCollector::new(sparse_cfg).collect(&mut sparse_heap);
        prop_assert_eq!(&par.stats, &sparse.stats);
        prop_assert_eq!(par.free, sparse.free);
        prop_assert_eq!(par_heap.words(), sparse_heap.words());
    }
}
