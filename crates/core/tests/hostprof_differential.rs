//! Self-observation must not perturb the simulation: a run with the
//! [`hwgc_obs::HostProfiler`] attached must produce bit-identical
//! `GcStats` and allocation frontier to a hostprof-off run of the same
//! heap, on every engine. This is the property that lets wall-clock
//! profiling stay on in CI legs and experiment binaries without
//! invalidating a single deterministic number — and what keeps the
//! profiler's *deterministic* counters (the window funnel, park/wake
//! statistics) honest: they describe exactly the run the plain door
//! would have executed.
//!
//! The par engine leg is the load-bearing one: hostprof is deliberately
//! *not* part of the engine's `windowed` gate (unlike `Probe`, which
//! disables windows so per-cycle event streams stay pinned), because
//! every hostprof counter is an aggregate that window-splitting cannot
//! change. This test is the enforcement of that claim.

use hwgc_core::{EngineKind, GcConfig, SimCollector};
use hwgc_memsim::MemConfig;
use hwgc_obs::HostProfiler;
use hwgc_workloads::{Preset, WorkloadSpec};

fn config(engine: EngineKind, cores: usize, extra: u32) -> GcConfig {
    GcConfig {
        n_cores: cores,
        mem: MemConfig::default().with_extra_latency(extra),
        engine: Some(engine),
        sparse: engine != EngineKind::Naive,
        host_threads: 1,
        par_copy_threshold: 1,
        ..GcConfig::default()
    }
}

#[test]
fn hostprof_on_equals_hostprof_off_across_engines() {
    let engines = [EngineKind::Naive, EngineKind::Sparse, EngineKind::Par];
    let presets = [Preset::Compress, Preset::Javac];
    // +20 puts compress in the window-rich regime, so the par leg
    // exercises the full funnel (attempt → plan → fire → pool copy)
    // under profiling, not just the veto paths.
    for engine in engines {
        for preset in presets {
            for (cores, extra) in [(4usize, 0u32), (16, 20)] {
                let cfg = config(engine, cores, extra);
                let base = WorkloadSpec::new(preset, 42).build();

                let mut plain_heap = base.clone();
                let plain = SimCollector::new(cfg).collect(&mut plain_heap);

                let mut prof = HostProfiler::new();
                let mut prof_heap = base;
                let profiled = SimCollector::new(cfg).collect_hostprof(&mut prof_heap, &mut prof);

                assert_eq!(
                    profiled.stats,
                    plain.stats,
                    "{engine:?}/{}/{cores}c +{extra}: hostprof-on GcStats diverged",
                    preset.name()
                );
                assert_eq!(
                    profiled.free,
                    plain.free,
                    "{engine:?}/{}/{cores}c +{extra}: hostprof-on free diverged",
                    preset.name()
                );
                assert_eq!(
                    prof_heap.words(),
                    plain_heap.words(),
                    "{engine:?}/{}/{cores}c +{extra}: hostprof-on heap image diverged",
                    preset.name()
                );

                // The profiler actually observed the run: the cycle
                // counter is a full-loop count, so it can never exceed
                // the simulated total, and a sparse/par run must have
                // skipped at least something on these workloads.
                let executed = prof.counter("engine.cycles_executed");
                assert!(
                    executed > 0,
                    "{engine:?}/{}: no cycles observed",
                    preset.name()
                );
                assert!(
                    executed <= plain.stats.total_cycles,
                    "{engine:?}/{}: observed {executed} executed cycles > {} simulated",
                    preset.name(),
                    plain.stats.total_cycles
                );
                if engine == EngineKind::Par {
                    let attempted = prof.counter("win.attempted");
                    let fired = prof.counter("win.fired");
                    let vetoed: u64 = [
                        "win.veto.no_bandwidth",
                        "win.veto.mem_not_ready",
                        "win.veto.retire_bound",
                        "win.veto.no_kernels",
                        "win.veto.stream_bound",
                        "win.veto.clean_cut",
                        "win.veto.no_words",
                    ]
                    .iter()
                    .map(|k| prof.counter(k))
                    .sum();
                    assert_eq!(
                        attempted,
                        fired + vetoed,
                        "{}/{cores}c +{extra}: window funnel does not reconcile \
                         (attempted {attempted} != fired {fired} + vetoed {vetoed})",
                        preset.name()
                    );
                }
            }
        }
    }
}

#[test]
fn deterministic_counters_are_stable_across_reruns() {
    // Two profiled runs of the same configuration must agree on every
    // deterministic counter and histogram — this is what makes them
    // golden-testable. (Timers and notes are explicitly exempt.)
    let cfg = config(EngineKind::Par, 16, 20);
    let run = || {
        let mut heap = WorkloadSpec::new(Preset::Compress, 42).build();
        let mut prof = HostProfiler::new();
        SimCollector::new(cfg).collect_hostprof(&mut heap, &mut prof);
        prof
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.deterministic_json().to_string_compact(),
        b.deterministic_json().to_string_compact(),
        "deterministic counters diverged between identical runs"
    );
}
