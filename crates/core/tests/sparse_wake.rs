//! Wake-completeness property tests for the sparse active-set engine.
//!
//! The classic hazard of a parked-core rewrite is the missed wakeup: a
//! core sleeps past a cycle in which its retry would have succeeded. The
//! oracle here is the shadow naive engine, which ticks every core every
//! cycle and therefore *cannot* oversleep. If the sparse engine ever
//! lets a core sleep through a productive cycle, that core's progress is
//! delayed, `total_cycles` grows, and its stall breakdown diverges — so
//! full `GcStats` equality (which includes the per-core, per-reason
//! stall counters) on the same graph is exactly the "no core sleeps past
//! a cycle in which it could have progressed" assertion. Conversely a
//! premature wake replays too few skipped stalls and diverges the same
//! counters from the other side.
//!
//! Graphs, core counts, memory latencies, and schedule policies are all
//! drawn by proptest so the differential explores interleavings no
//! hand-written graph pins down.

use hwgc_core::schedule::{Adversarial, RandomOrder, SchedulePolicy};
use hwgc_core::{GcConfig, SimCollector};
use hwgc_heap::{verify_collection, GraphBuilder, Heap, Snapshot};
use hwgc_memsim::MemConfig;
use proptest::prelude::*;

/// One object: `pi` pointer slots, `delta` data words.
type Node = (u32, u32);
/// One edge: (parent index, slot index, child index), all later reduced
/// modulo the actual node/slot counts.
type Edge = (usize, u32, usize);

#[derive(Debug, Clone)]
struct Shape {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    roots: Vec<usize>,
}

fn shapes() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec((0u32..4, 1u32..5), 1..32),
        prop::collection::vec((0usize..32, 0u32..4, 0usize..32), 0..64),
        prop::collection::vec(0usize..32, 1..6),
    )
        .prop_map(|(nodes, edges, roots)| Shape {
            nodes,
            edges,
            roots,
        })
}

/// Materialize a shape in a fresh heap. Out-of-range indices wrap; edges
/// into objects without pointer slots are dropped. Unrooted subgraphs
/// stay behind as garbage, which is the interesting case for the
/// termination protocol (`done` broadcast racing parked cores).
fn build(shape: &Shape) -> Heap {
    let mut heap = Heap::new(4096);
    let mut b = GraphBuilder::new(&mut heap);
    let mut ids = Vec::with_capacity(shape.nodes.len());
    for &(pi, delta) in &shape.nodes {
        ids.push(b.add(pi, delta).expect("graph exceeds fromspace"));
    }
    for &(parent, slot, child) in &shape.edges {
        let p = parent % ids.len();
        let pi = shape.nodes[p].0;
        if pi > 0 {
            b.link(ids[p], slot % pi, ids[child % ids.len()]);
        }
    }
    for &root in &shape.roots {
        b.root(ids[root % ids.len()]);
    }
    heap
}

fn policy_for(choice: u8, seed: u64) -> Option<Box<dyn SchedulePolicy>> {
    match choice % 3 {
        0 => None,
        1 => Some(Box::new(RandomOrder::new(seed))),
        _ => Some(Box::new(Adversarial::new(seed))),
    }
}

fn run(
    cfg: GcConfig,
    shape: &Shape,
    policy_choice: u8,
    seed: u64,
) -> (hwgc_core::GcStats, u32, Heap, Snapshot) {
    let mut heap = build(shape);
    let snap = Snapshot::capture(&heap);
    let out = match policy_for(policy_choice, seed) {
        Some(mut p) => SimCollector::new(cfg).collect_scheduled(&mut heap, p.as_mut()),
        None => SimCollector::new(cfg).collect(&mut heap),
    };
    (out.stats, out.free, heap, snap)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// No missed and no spurious wakeups, across graphs × cores ×
    /// latency × schedule policy: the sparse engine's stats are
    /// bit-identical to the always-awake shadow engine's.
    #[test]
    fn sparse_never_oversleeps(
        shape in shapes(),
        cores in 1usize..=16,
        extra in proptest::strategy::Union::new(vec![
            proptest::strategy::boxed(Just(0u32)),
            proptest::strategy::boxed(1u32..24),
        ]),
        policy_choice in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let sparse_cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(extra),
            // Pinned so the 1-core draws still differential sparse vs
            // naive (the unpinned single-core default is the naive loop).
            engine: Some(hwgc_core::EngineKind::Sparse),
            sparse: true,
            ..GcConfig::with_cores(cores)
        };
        let naive_cfg = GcConfig {
            engine: Some(hwgc_core::EngineKind::Naive),
            sparse: false,
            fast_forward: false,
            ..sparse_cfg
        };
        let (s_stats, s_free, s_heap, s_snap) = run(sparse_cfg, &shape, policy_choice, seed);
        let (n_stats, n_free, _, _) = run(naive_cfg, &shape, policy_choice, seed);
        prop_assert_eq!(
            &s_stats, &n_stats,
            "sparse diverged from shadow naive engine ({cores} cores, +{extra} latency, policy {policy_choice})"
        );
        prop_assert_eq!(s_free, n_free);
        // The collection itself must also be correct, not just consistent.
        verify_collection(&s_heap, s_free, &s_snap).unwrap();
    }

    /// The event log flips the park rules for lock classes (they must
    /// stay awake so each per-cycle fail logs). Exercise that mode too.
    #[test]
    fn sparse_never_oversleeps_with_event_log(
        shape in shapes(),
        cores in 1usize..=16,
        extra in 0u32..12,
    ) {
        let sparse_cfg = GcConfig {
            mem: MemConfig::default().with_extra_latency(extra),
            // Pinned so the 1-core draws still differential sparse vs
            // naive (the unpinned single-core default is the naive loop).
            engine: Some(hwgc_core::EngineKind::Sparse),
            sparse: true,
            ..GcConfig::with_cores(cores)
        };
        let mut h1 = build(&shape);
        let mut t1 = hwgc_core::trace::SignalTrace::with_events(1 << 40);
        let sparse = SimCollector::new(sparse_cfg).collect_traced(&mut h1, &mut t1);
        let mut h2 = build(&shape);
        let mut t2 = hwgc_core::trace::SignalTrace::with_events(1 << 40);
        let naive = SimCollector::new(GcConfig {
            engine: Some(hwgc_core::EngineKind::Naive),
            sparse: false,
            fast_forward: false,
            ..sparse_cfg
        })
        .collect_traced(&mut h2, &mut t2);
        prop_assert_eq!(&sparse.stats, &naive.stats);
        prop_assert_eq!(t1.events(), t2.events());
    }
}
