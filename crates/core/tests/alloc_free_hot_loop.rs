//! The engine's per-cycle loop must not touch the heap allocator: every
//! buffer it needs (schedule views, tick outcomes, trace-row core states,
//! DRAM queue, SB split table) is preallocated before cycle 0. This test
//! pins that property with a counting `#[global_allocator]`: two chain
//! workloads whose collections differ by thousands of simulated cycles
//! must allocate the *same* number of times, because all allocation
//! happens in setup, which is identical.
//!
//! Kept as the only test in this binary — the allocation counter is
//! process-global and concurrent tests would race it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_heap::{GraphBuilder, Heap};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A serial chain of `len` two-word objects — no parallelism, so cycles
/// scale linearly with `len` while the engine's buffers do not.
fn chain(len: usize) -> Heap {
    let mut heap = Heap::new(16 * len as u32 + 64);
    let mut b = GraphBuilder::new(&mut heap);
    let ids: Vec<_> = (0..len).map(|_| b.add(1, 1).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], 0, w[1]);
    }
    b.root(ids[0]);
    heap
}

fn collect_counting(heap: &mut Heap, cfg: GcConfig) -> (u64, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = SimCollector::new(cfg).collect(heap);
    (
        ALLOCS.load(Ordering::Relaxed) - before,
        out.stats.total_cycles,
    )
}

#[test]
fn steady_state_cycles_do_not_allocate() {
    // Both steady-state engines are covered: the naive per-cycle loop
    // (sparse and fast-forward pinned off so every simulated cycle runs
    // the loop body) and the sparse active-set loop, whose park/wake
    // machinery — wake lists, wake feed, retirement calendar, replay
    // scratch — must likewise be preallocated before cycle 0.
    let naive = GcConfig {
        sparse: false,
        fast_forward: false,
        ..GcConfig::with_cores(4)
    };
    let sparse = GcConfig {
        sparse: true,
        ..GcConfig::with_cores(4)
    };
    for (mode, cfg) in [("naive", naive), ("sparse", sparse)] {
        let mut small = chain(64);
        let mut large = chain(512);

        // Warm-up: allocator internals (size-class metadata etc.) may
        // lazily allocate on first use; measure on the second run of
        // each shape.
        collect_counting(&mut chain(64), cfg);
        collect_counting(&mut chain(512), cfg);

        let (small_allocs, small_cycles) = collect_counting(&mut small, cfg);
        let (large_allocs, large_cycles) = collect_counting(&mut large, cfg);
        assert!(
            large_cycles > small_cycles + 1_000,
            "{mode}: chain lengths must separate the cycle counts ({small_cycles} vs {large_cycles})"
        );
        assert_eq!(
            small_allocs,
            large_allocs,
            "{mode}: per-cycle allocations detected: {} extra allocations over {} extra cycles",
            large_allocs as i64 - small_allocs as i64,
            large_cycles - small_cycles
        );

        // A traced run may allocate for the sampled rows themselves (the
        // rows vector doubling as it grows), but still nothing per
        // *cycle*: the per-row core states live inline, so a sparse
        // trace adds only O(log rows) allocations.
        let mut trace = SignalTrace::new(4096);
        let mut heap = chain(512);
        let before = ALLOCS.load(Ordering::Relaxed);
        SimCollector::new(cfg).collect_traced(&mut heap, &mut trace);
        let traced_delta = ALLOCS.load(Ordering::Relaxed) - before;
        let untraced = large_allocs;
        assert!(
            !trace.rows().is_empty(),
            "{mode}: the chain must run long enough to sample at least one row"
        );
        assert!(
            traced_delta <= untraced + 64,
            "{mode}: tracing added {} allocations over the untraced run ({} rows)",
            traced_delta as i64 - untraced as i64,
            trace.rows().len()
        );

        // The hostprof door with the null profiler must be
        // allocation-identical to the plain door: every `H::ACTIVE`
        // guard compiles the profiling hooks out of the hot loop, so a
        // hostprof-off run is the same machine code path as `collect`.
        let mut heap = chain(512);
        let before = ALLOCS.load(Ordering::Relaxed);
        SimCollector::new(cfg).collect_hostprof(&mut heap, &mut hwgc_obs::NullHostProf);
        let hostprof_delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            hostprof_delta, untraced,
            "{mode}: collect_hostprof(NullHostProf) allocated {} times, collect {} — \
             the null profiler must be free",
            hostprof_delta, untraced
        );
    }
}
