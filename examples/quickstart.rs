//! Quickstart: build an object graph, run one collection cycle on the
//! simulated multi-core GC coprocessor, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hwgc::prelude::*;

fn main() {
    // A heap with two 64 Ki-word semispaces.
    let mut heap = Heap::new(64 * 1024);

    // Build a little object graph: a binary tree with some shared leaves
    // and a chunk of garbage that must NOT survive the collection.
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(2, 1).expect("heap full");
    let left = b.add(2, 4).expect("heap full");
    let right = b.add(2, 4).expect("heap full");
    let shared = b.add(0, 8).expect("heap full");
    b.link(root, 0, left);
    b.link(root, 1, right);
    b.link(left, 0, shared);
    b.link(right, 0, shared); // diamond: shared must be copied exactly once
    b.link(right, 1, root); // a cycle, no problem for a tracing collector
    for _ in 0..100 {
        b.add(0, 16).expect("heap full"); // unreachable garbage
    }
    b.root(root);

    println!("before GC: {} words allocated", heap.allocated_words());

    // Snapshot the reachable graph so we can verify the collection.
    let snapshot = Snapshot::capture(&heap);

    // Collect with an 8-core coprocessor and the default (prototype-like)
    // memory system.
    let collector = SimCollector::new(GcConfig::with_cores(8));
    let outcome = collector.collect(&mut heap);

    // The verifier checks reachability preservation, content preservation,
    // pointer hygiene and perfect compaction.
    let report = verify_collection(&heap, outcome.free, &snapshot).expect("collection is correct");

    println!(
        "after GC:  {} words live ({} objects)",
        report.live_words, report.live_objects
    );
    println!();
    println!(
        "collection took {} simulated clock cycles",
        outcome.stats.total_cycles
    );
    println!("  objects copied:  {}", outcome.stats.objects_copied);
    println!("  words copied:    {}", outcome.stats.words_copied);
    println!("  pointers fixed:  {}", outcome.stats.pointers_visited);
    println!(
        "  work list empty: {:.2} % of cycles",
        outcome.stats.empty_worklist_fraction() * 100.0
    );
    println!(
        "  header FIFO:     {} hits / {} misses",
        outcome.stats.fifo.hits, outcome.stats.fifo.misses
    );

    // The mutator can keep allocating right after the compacted live data.
    let fresh = heap.alloc(0, 4).expect("space was reclaimed");
    println!();
    println!("mutator resumed: new object at address {fresh}");
}
