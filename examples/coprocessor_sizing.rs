//! Sizing study: how many GC cores does a workload actually need?
//!
//! The paper's Figure 5 shows that the answer depends on the *shape* of
//! the object graph, not its size: linear heaps stop scaling at 2–3
//! cores, while well-connected heaps ride the memory bandwidth to a
//! dozen. This example runs a workload of your choosing across
//! coprocessor configurations and prints the smallest configuration
//! within 10 % of the best observed GC time — the sweet spot a hardware
//! architect would pick.
//!
//! ```sh
//! cargo run --release --example coprocessor_sizing [preset]
//! ```

use hwgc::prelude::*;
use hwgc::workloads::Preset;

fn main() {
    let preset = std::env::args()
        .nth(1)
        .map(|name| Preset::by_name(&name).unwrap_or_else(|| panic!("unknown preset {name}")))
        .unwrap_or(Preset::Db);
    let spec = WorkloadSpec::new(preset, 42);
    println!("sizing the coprocessor for the `{preset}` workload\n");
    println!(
        "{:>6}  {:>12}  {:>8}  {:>14}",
        "cores", "GC cycles", "speedup", "efficiency"
    );

    let mut results = Vec::new();
    for cores in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let outcome = SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap);
        verify_collection(&heap, outcome.free, &snapshot).expect("correct collection");
        results.push((cores, outcome.stats.total_cycles));
    }

    let base = results[0].1 as f64;
    for &(cores, cycles) in &results {
        let speedup = base / cycles as f64;
        println!(
            "{cores:>6}  {cycles:>12}  {speedup:>7.2}x  {:>13.1} %",
            100.0 * speedup / cores as f64
        );
    }

    let best = results.iter().map(|&(_, c)| c).min().unwrap() as f64;
    let sweet = results
        .iter()
        .find(|&&(_, c)| (c as f64) <= best * 1.10)
        .unwrap();
    println!(
        "\nsweet spot: {} cores (within 10 % of the best time; more cores mostly spin \
         on an empty work list or queue at the memory controller)",
        sweet.0
    );
}
