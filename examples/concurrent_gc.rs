//! The paper's stated next step, runnable: collect while the application
//! keeps executing behind a hardware read barrier.
//!
//! Compares a stop-the-world cycle against a concurrent cycle on the same
//! heap and reports what the mutator achieved during the collection, and
//! what the barrier did for it.
//!
//! ```sh
//! cargo run --release --example concurrent_gc
//! ```

use hwgc::core::MutatorConfig;
use hwgc::heap::{verify_collection_with, VerifyOptions};
use hwgc::prelude::*;
use hwgc::workloads::Preset;

fn main() {
    let spec = WorkloadSpec::new(Preset::Db, 42);

    // Baseline: the paper's configuration — the main processor is stopped
    // for the whole cycle.
    let mut heap = spec.build();
    let stw = SimCollector::new(GcConfig::with_cores(8)).collect(&mut heap);
    println!(
        "stop-the-world: {} cycles — the application is paused throughout",
        stw.stats.total_cycles
    );
    println!(
        "               at the prototype's 25 MHz that is a {:.2} ms pause",
        stw.stats.total_cycles as f64 / 25_000.0
    );

    // Concurrent: the mutator runs during the cycle.
    let mut heap = spec.build();
    let snapshot = Snapshot::capture(&heap);
    let out = SimCollector::new(GcConfig::with_cores(8))
        .collect_concurrent(&mut heap, &MutatorConfig::default());
    verify_collection_with(
        &heap,
        out.free,
        &snapshot,
        VerifyOptions {
            allow_unknown_objects: true,
            ..VerifyOptions::default()
        },
    )
    .expect("concurrent collection is correct");

    let m = &out.mutator;
    println!();
    println!(
        "concurrent:     {} cycles ({:.0} % dilation) — and meanwhile the application:",
        out.stats.total_cycles,
        100.0 * (out.stats.total_cycles as f64 / stw.stats.total_cycles as f64 - 1.0)
    );
    println!(
        "  completed {} actions ({:.0} % utilization)",
        m.actions,
        m.utilization(out.stats.total_cycles) * 100.0
    );
    println!(
        "  {} pointer loads, {} data loads, {} data writes",
        m.pointer_loads, m.data_loads, m.data_writes
    );
    println!(
        "  allocated {} objects (black, safe from the wavefront)",
        m.allocations
    );
    println!();
    println!("read-barrier work that replaced the pause:");
    println!(
        "  {} accesses redirected through a gray frame's backlink",
        m.backlink_redirects
    );
    println!(
        "  {} fromspace pointers translated via forwarding pointers",
        m.barrier_forwards
    );
    println!(
        "  {} objects evacuated by the barrier itself",
        m.barrier_evacuations
    );
    println!("  {} cycles spent waiting on the collector", m.stall_cycles);
}
