//! GCBench — Boehm, Demers & Spiegel's classic collector benchmark,
//! ported to the simulated coprocessor heap.
//!
//! The benchmark builds complete binary trees of increasing depth
//! (dropping each when done) on top of a long-lived tree and a large
//! array that stay live throughout. It is not one of the paper's eight
//! workloads, but it is the lingua franca of GC papers and a good
//! end-to-end stress of the public API: deep recursion with a shadow
//! stack (the collector *moves* objects, so intermediate references are
//! protected as roots across allocating calls), bulk death, a persistent
//! old generation, and a big array.
//!
//! ```sh
//! cargo run --release --example gcbench
//! ```

use hwgc::prelude::*;

const STRETCH_DEPTH: u32 = 12;
const LONG_LIVED_DEPTH: u32 = 11;
const ARRAY_WORDS: u32 = 4000;
const MIN_DEPTH: u32 = 4;
const MAX_DEPTH: u32 = 10;

struct Bench {
    heap: Heap,
    collector: SimCollector,
    next_id: u32,
    collections: u64,
    gc_cycles_total: u64,
}

impl Bench {
    /// Allocate a 2-pointer/2-data tree node, collecting if needed.
    /// Anything not reachable from the shadow stack (the heap's root set)
    /// is collectable at this point.
    fn alloc_node(&mut self) -> Addr {
        loop {
            if let Some(n) = self.heap.alloc(2, 2) {
                self.next_id += 1;
                self.heap.set_data(n, 0, self.next_id);
                return n;
            }
            let out = self.collector.collect(&mut self.heap);
            self.collections += 1;
            self.gc_cycles_total += out.stats.total_cycles;
        }
    }

    /// Build a complete binary tree bottom-up, protecting the subtrees on
    /// the shadow stack across every allocating call.
    fn make_tree(&mut self, depth: u32) -> Addr {
        if depth == 0 {
            return self.alloc_node();
        }
        let left = self.make_tree(depth - 1);
        self.heap.add_root(left); // protect across the right subtree + node
        let right = self.make_tree(depth - 1);
        self.heap.add_root(right);
        let node = self.alloc_node(); // may collect: left/right tracked as roots
        let right = self.heap.pop_root();
        let left = self.heap.pop_root();
        self.heap.set_ptr(node, 0, left);
        self.heap.set_ptr(node, 1, right);
        node
    }

    /// Sanity-walk a tree, counting nodes.
    fn tree_nodes(&self, root: Addr) -> u64 {
        if root == NULL {
            return 0;
        }
        1 + self.tree_nodes(self.heap.ptr(root, 0)) + self.tree_nodes(self.heap.ptr(root, 1))
    }
}

fn main() {
    let mut b = Bench {
        heap: Heap::new(56 * 1024),
        collector: SimCollector::new(GcConfig::with_cores(8)),
        next_id: 0,
        collections: 0,
        gc_cycles_total: 0,
    };

    println!("GCBench on the simulated 8-core coprocessor\n");

    // Stretch the heap once with a big temporary tree.
    let stretch = b.make_tree(STRETCH_DEPTH);
    println!(
        "stretch tree of depth {STRETCH_DEPTH}: {} nodes (now garbage)",
        b.tree_nodes(stretch)
    );

    // Long-lived data that survives every collection from here on.
    let long_lived = b.make_tree(LONG_LIVED_DEPTH);
    b.heap.add_root(long_lived);
    let array = loop {
        if let Some(a) = b.heap.alloc(0, ARRAY_WORDS) {
            break a;
        }
        let out = b.collector.collect(&mut b.heap);
        b.collections += 1;
        b.gc_cycles_total += out.stats.total_cycles;
    };
    b.next_id += 1;
    let id = b.next_id;
    b.heap.set_data(array, 0, id);
    b.heap.add_root(array);
    println!("long-lived: depth-{LONG_LIVED_DEPTH} tree + {ARRAY_WORDS}-word array (kept live)\n");

    let mut depth = MIN_DEPTH;
    while depth <= MAX_DEPTH {
        let iterations = 8u32 << (MAX_DEPTH - depth);
        let before = b.collections;
        for _ in 0..iterations {
            let t = b.make_tree(depth); // temporary
            std::hint::black_box(t);
        }
        println!(
            "built {iterations:4} trees of depth {depth:2}  ({} collections during this pass)",
            b.collections - before
        );
        depth += 2;
    }

    // The long-lived data must have survived everything, verbatim.
    let ll = *b.heap.roots().first().expect("long-lived tree root");
    let expected = (1u64 << (LONG_LIVED_DEPTH + 1)) - 1;
    assert_eq!(b.tree_nodes(ll), expected, "long-lived tree corrupted");
    let arr = b.heap.roots()[1];
    assert_eq!(b.heap.data(arr, 0), id, "long-lived array corrupted");

    println!();
    println!(
        "{} collections, {} simulated GC cycles total ({:.2} ms at 25 MHz)",
        b.collections,
        b.gc_cycles_total,
        b.gc_cycles_total as f64 / 25_000.0
    );
    println!(
        "long-lived tree intact ({expected} nodes), array intact — compaction preserved them \
         across every cycle"
    );
}
