//! A long-running workload: a server that churns through session objects.
//!
//! This is the scenario the paper's introduction motivates: an application
//! allocating at a high rate, with the collector running a full cycle each
//! time a semispace fills. We model a session store — a root table of
//! live sessions, each owning a buffer chain — where sessions are created
//! and expire continuously, and measure GC behaviour across many cycles.
//!
//! ```sh
//! cargo run --release --example server_sessions
//! ```

use hwgc::prelude::*;

/// One session: a descriptor object pointing at a chain of buffers.
fn new_session(heap: &mut Heap, buffers: u32) -> Option<Addr> {
    let desc = heap.alloc(1, 6)?;
    let mut prev = desc;
    for _ in 0..buffers {
        let buf = heap.alloc(1, 24)?;
        heap.set_ptr(prev, 0, buf);
        prev = buf;
    }
    // Stamp data word 0 with a non-zero id so snapshots stay meaningful.
    heap.set_data(desc, 0, desc);
    Some(desc)
}

fn main() {
    let mut heap = Heap::new(96 * 1024);
    // The session table: a root object with 512 slots.
    let table = heap.alloc(512, 1).expect("fresh heap");
    heap.set_data(table, 0, table);
    heap.add_root(table);

    let collector = SimCollector::new(GcConfig::with_cores(8));
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let mut cycles = 0u32;
    let mut total_sim_cycles = 0u64;
    let mut total_copied = 0u64;
    let mut sessions_created = 0u64;

    while cycles < 10 {
        // Mutator phase: create sessions, expire old ones.
        let slot = (rand() % 512) as u32;
        let buffers = 2 + (rand() % 6) as u32;
        match new_session(&mut heap, buffers) {
            Some(desc) => {
                // Overwriting a slot drops the previous session (garbage).
                let table_addr = heap.roots()[0];
                heap.set_ptr(table_addr, slot, desc);
                sessions_created += 1;
            }
            None => {
                // Semispace full: stop the world and collect.
                let outcome = collector.collect(&mut heap);
                cycles += 1;
                total_sim_cycles += outcome.stats.total_cycles;
                total_copied += outcome.stats.words_copied;
                println!(
                    "GC cycle {cycles:2}: {:7} cycles, {:6} words survived, {:5} objects",
                    outcome.stats.total_cycles,
                    outcome.stats.words_copied,
                    outcome.stats.objects_copied,
                );
            }
        }
    }

    println!();
    println!("{sessions_created} sessions created across {cycles} collection cycles");
    println!(
        "mean GC pause: {} simulated cycles ({} words copied per cycle on average)",
        total_sim_cycles / cycles as u64,
        total_copied / cycles as u64
    );
    println!(
        "at the prototype's 25 MHz clock that is {:.2} ms per collection",
        (total_sim_cycles / cycles as u64) as f64 / 25_000_000.0 * 1e3
    );
}
