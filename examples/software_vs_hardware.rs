//! The paper's thesis in one program: run the *same* fine-grained
//! algorithm (a) on the simulated coprocessor, where the synchronization
//! block makes every lock acquisition free, and (b) with real threads and
//! software synchronization — then compare what each paid per object.
//! The coarser-grained software baselines from related work are included
//! to show the trade they make.
//!
//! ```sh
//! cargo run --release --example software_vs_hardware
//! ```

use hwgc::prelude::*;
use hwgc::swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};
use hwgc::workloads::Preset;
use hwgc_heap::verify_collection_relaxed;

fn main() {
    let spec = WorkloadSpec::new(Preset::Javacc, 42);

    // --- Hardware: the simulated coprocessor --------------------------
    let mut heap = spec.build();
    let snapshot = Snapshot::capture(&heap);
    let hw = SimCollector::new(GcConfig::with_cores(8)).collect(&mut heap);
    verify_collection(&heap, hw.free, &snapshot).expect("hardware collection correct");
    let live = snapshot.live_objects() as u64;

    println!("workload: javacc preset, {live} live objects\n");
    println!("hardware coprocessor (8 cores, simulated):");
    println!("  {} clock cycles per collection", hw.stats.total_cycles);
    println!(
        "  {} lock acquisitions — every one free in the uncontended case",
        hw.stats.sync.acquisitions.iter().sum::<u64>()
    );
    println!(
        "  {} failed acquisition attempts (contention stalls)",
        hw.stats.sync.failed_attempts.iter().sum::<u64>()
    );

    // --- Software: same algorithm + the related-work baselines --------
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    println!("\nsoftware collectors ({threads} thread(s)):");
    println!(
        "  {:>14}  {:>10}  {:>13}  {:>12}  {:>10}",
        "collector", "time (µs)", "sync ops/obj", "failed CAS", "frag words"
    );

    let collectors: Vec<(Box<dyn SwCollector>, bool)> = vec![
        (Box::new(FineGrained::new()), true),
        (Box::new(WorkStealing::new()), false),
        (Box::new(Chunked::new()), false),
        (Box::new(Packets::new()), false),
    ];
    for (collector, compacting) in collectors {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let report = collector.collect(&mut heap, threads);
        if compacting {
            verify_collection(&heap, report.free, &snapshot)
        } else {
            verify_collection_relaxed(&heap, report.free, &snapshot)
        }
        .unwrap_or_else(|e| panic!("{} incorrect: {e}", report.name));
        println!(
            "  {:>14}  {:>10.0}  {:>13.1}  {:>12}  {:>10}",
            report.name,
            report.elapsed.as_secs_f64() * 1e6,
            report.ops.total_ops() as f64 / live as f64,
            report.ops.header_cas_failed,
            report.fragmentation_words,
        );
    }

    println!(
        "\nreading: the fine-grained software collector needs the most synchronization \
         per object\nand stays perfectly compact; the coarser schemes buy fewer shared \
         operations with\nfragmentation and auxiliary structures. The coprocessor's \
         synchronization block makes\nthe fine-grained scheme free — that is the paper's \
         contribution."
    );
}
