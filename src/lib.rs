//! # hwgc — fine-grained parallel compacting garbage collection
//!
//! Facade crate for the reproduction of *Horvath & Meyer, "Fine-Grained
//! Parallel Compacting Garbage Collection through Hardware-Supported
//! Synchronization", ICPP 2010*.
//!
//! The workspace models the paper's full system:
//!
//! * [`heap`] — the object-based heap (semispaces, two-word headers,
//!   pointer/data separation, verifier),
//! * [`sync`] — the coprocessor's synchronization block (scan/free locks,
//!   per-core header-lock registers, busy bits, barriers),
//! * [`memsim`] — the split-transaction memory system (per-core ports,
//!   bandwidth/latency model, comparator array, header FIFO),
//! * [`core`] — the parallel Cheney collector running on simulated
//!   microprogrammed cores, plus the sequential reference collector,
//! * [`swgc`] — real-thread software collectors (the paper's algorithm with
//!   software synchronization, and the coarser-grained baselines from
//!   related work),
//! * [`workloads`] — synthetic heap graphs reproducing the GC-relevant
//!   signatures of the paper's eight Java benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use hwgc::prelude::*;
//!
//! // Build a heap with a small object graph.
//! let mut heap = Heap::new(4096);
//! let mut b = GraphBuilder::new(&mut heap);
//! let root = b.add(2, 1).unwrap();
//! let left = b.add(0, 4).unwrap();
//! let right = b.add(0, 4).unwrap();
//! b.link(root, 0, left);
//! b.link(root, 1, right);
//! b.root(root);
//!
//! // Collect with an 8-core simulated GC coprocessor.
//! let snapshot = Snapshot::capture(&heap);
//! let outcome = SimCollector::new(GcConfig { n_cores: 8, ..GcConfig::default() })
//!     .collect(&mut heap);
//! verify_collection(&heap, outcome.free, &snapshot).unwrap();
//! assert_eq!(outcome.stats.objects_copied, 3);
//! ```

pub use hwgc_core as core;
pub use hwgc_heap as heap;
pub use hwgc_memsim as memsim;
pub use hwgc_swgc as swgc;
pub use hwgc_sync as sync;
pub use hwgc_workloads as workloads;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use hwgc_core::{
        ConcurrentOutcome, GcConfig, GcOutcome, GcStats, MutatorConfig, SeqCheney, SignalTrace,
        SimCollector,
    };
    pub use hwgc_heap::{verify_collection, Addr, GraphBuilder, Heap, ObjId, Snapshot, Word, NULL};
    pub use hwgc_memsim::MemConfig;
    pub use hwgc_workloads::{Churn, ChurnSpec, Preset, StepOutcome, WorkloadSpec};
}
