//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins `rand 0.9` but the build environment has no network
//! and no registry cache, so this path crate provides the small,
//! deterministic subset the workspace actually uses:
//!
//! * [`rngs::SmallRng`] — a splitmix64/xoshiro-style small PRNG,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random_range`] over half-open and inclusive integer ranges,
//! * [`Rng::random_bool`].
//!
//! Sequences are deterministic per seed but are **not** bit-compatible
//! with upstream `rand`; nothing in the workspace depends on the exact
//! stream, only on determinism (workload generators are seeded and their
//! outputs snapshotted/verified structurally, never byte-compared against
//! upstream).

// Vendored stand-in: keep workspace `clippy -D warnings` focused on first-party code.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a 64-bit word source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng() as $t;
                }
                lo + (rng() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic PRNG (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64: passes BigCrush, one add + two xor-shifts-mults.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.random_range(2u32..=4);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "got {hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.random_range(0u64..=u64::MAX);
    }
}
