//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s no-poisoning API
//! surface (the subset the workspace uses: `Mutex::new`/`lock`/`try_lock`,
//! `RwLock::new`/`read`/`write`). Poisoning is translated by unwrapping
//! into the inner data — a panicking collector worker already aborts the
//! enclosing test, so poison recovery is not load-bearing here.

// Vendored stand-in: keep workspace `clippy -D warnings` focused on first-party code.
#![allow(clippy::all)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
