//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::deque` API surface the work-stealing collector
//! uses (`Worker::new_lifo`, `Worker::push/pop/stealer`, `Stealer::steal`,
//! `Injector::new/push/steal`, `Steal`). The semantics match crossbeam's —
//! LIFO owner end, FIFO steal end, linearizable steals — but the
//! implementation is a mutex-protected `VecDeque` rather than a lock-free
//! Chase–Lev deque. The workspace uses the deque for *correctness*
//! experiments (the sync-op tallies it reports count algorithm-level
//! operations, not deque internals), so the loss of lock-freedom only
//! shifts absolute wall-clock numbers, never results.

// Vendored stand-in: keep workspace `clippy -D warnings` focused on first-party code.
#![allow(clippy::all)]

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The source was empty.
        Empty,
        /// A race was lost; retrying may succeed (never produced by this
        /// mutex-based stand-in, but matched by callers).
        Retry,
    }

    /// Owner end of a per-thread deque (LIFO for the owner).
    #[derive(Debug)]
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief end of a [`Worker`]'s deque (FIFO for thieves).
    #[derive(Debug)]
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops the most recently pushed task.
        pub fn new_lifo() -> Worker<T> {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// New deque whose owner pops the oldest task. The stand-in keeps
        /// owner order in `pop`; only `new_lifo` is used in-tree.
        pub fn new_fifo() -> Worker<T> {
            Worker::new_lifo()
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Pop from the owner end (most recent task).
        pub fn pop(&self) -> Option<T> {
            self.shared.lock().unwrap().pop_back()
        }

        /// Is the deque empty right now?
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Create a thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal from the opposite end of the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injector queue.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Is the injector empty right now?
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal(), Steal::Success('a'));
        assert_eq!(inj.steal(), Steal::Success('b'));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_steals_deliver_each_task_once() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for st in &stealers {
                s.spawn(|| loop {
                    match st.steal() {
                        Steal::Success(v) => got.lock().unwrap().push(v),
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
        });
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }
}
