//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`) without the
//! statistics engine. Behaviour:
//!
//! * By default a bench binary exits immediately — `cargo test`/`cargo
//!   bench` stay fast and dependency-free.
//! * With `HWGC_RUN_BENCHES=1` every benchmark routine runs once and its
//!   wall-clock time is printed — a smoke-run that exercises the real
//!   code paths and gives a rough number, not a statistical estimate.

// Vendored stand-in: keep workspace `clippy -D warnings` focused on first-party code.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Should benchmark bodies actually execute?
fn enabled() -> bool {
    std::env::var_os("HWGC_RUN_BENCHES").is_some_and(|v| v == "1")
}

/// How batched inputs are dropped (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (one invocation in this stand-in).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup` (one batch here).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sampling count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Warm-up budget (ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), f);
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, mut f: impl FnMut(&mut Bencher)) {
    if !enabled() {
        return;
    }
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {group}/{id}: {:?} (single smoke run)", b.elapsed);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one("", &id.to_string(), f);
    }
}

/// Re-export for call sites using `criterion::black_box`.
pub use std::hint::black_box;

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_runs_nothing() {
        let mut c = Criterion::default();
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert!(!ran, "bench bodies must not run without HWGC_RUN_BENCHES=1");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("db", 16).to_string(), "db/16");
    }
}
