//! Value-generation strategies (deterministic, no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Box a strategy for heterogeneous collections ([`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Integer types usable as range strategies.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }

            fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl Strategy for Range<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        u8::draw(rng, self.start, self.end)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                <$t>::draw(rng, self.start, self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                <$t>::draw_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A `Vec` of strategies generates one value per element.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Collection sizes accepted by [`vec`]: an exact `usize` or a
/// half-open/inclusive `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `prop::collection::vec`: a vector whose length is drawn from `size`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = usize::draw_inclusive(rng, self.size.lo, self.size.hi_inclusive);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of`: `None` a quarter of the time, `Some` otherwise.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`option_of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0u64..=u64::MAX).generate(&mut rng);
            let _ = y;
            let z = (5usize..6).generate(&mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (1usize..5)
            .prop_flat_map(|n| vec(0u32..10, n))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let strategies = vec![Just(7u32), Just(8u32)];
        let mut rng = TestRng::from_seed(4);
        assert_eq!(strategies.generate(&mut rng), vec![7, 8]);
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = option_of(0u32..5);
        let mut rng = TestRng::from_seed(12);
        let vals: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
