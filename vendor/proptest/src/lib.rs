//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this path crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig { cases, .. })]` header,
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`lo..hi`, `lo..=hi`) over integer types,
//! * tuple strategies (arity 2–6), `Vec<S>` as a per-element strategy,
//! * [`prop::collection::vec`], [`prop::option::of`], [`Just`],
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`].
//!
//! Generation is deterministic: case `i` of test `name` derives its RNG
//! seed from `hash(name) ⊕ i` (override the case count with the
//! `PROPTEST_CASES` env var). There is **no shrinking** — a failing case
//! reports its full generated input and seed instead, which the
//! workspace's small inputs keep readable. Regression files
//! (`proptest-regressions`) are not consumed; historical counterexamples
//! are promoted to named `#[test]`s in-tree.

// Vendored stand-in: keep workspace `clippy -D warnings` focused on first-party code.
#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` / `prop::option` namespaces, proptest-style.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange};
    }
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test (maps to `assert!`; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut __arms = ::std::vec::Vec::new();
        $( __arms.push($crate::strategy::boxed($arm)); )+
        $crate::strategy::Union::new(__arms)
    }};
}

/// Define property tests. Supports the two shapes used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_test(x in 0u32..10, v in prop::collection::vec(0..5usize, 1..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &__config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        let __desc = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let __outcome = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(move || { $body })
                        );
                        (__desc, __outcome)
                    },
                );
            }
        )*
    };
}
