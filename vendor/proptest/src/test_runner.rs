//! Deterministic case runner and RNG for the proptest stand-in.

use std::any::Any;

/// Splitmix64 RNG; deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each property test runs.
    pub cases: u32,
    #[doc(hidden)]
    pub __non_exhaustive: (),
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            __non_exhaustive: (),
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` generated cases (env `PROPTEST_CASES` overrides).
/// `case` returns the Debug-formatted inputs plus the caught test outcome;
/// on failure the panic is re-raised with case index, seed, and inputs.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), Box<dyn Any + Send>>),
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = fnv1a(name);
    for i in 0..cases {
        let seed = base ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut rng = TestRng::from_seed(seed);
        let (desc, outcome) = case(&mut rng);
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "property test `{name}` failed at case {i}/{cases} (seed {seed:#x})\n\
                 inputs: {desc}\n\
                 panic: {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_seed(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_cases_passes_when_all_cases_pass() {
        let cfg = ProptestConfig {
            cases: 10,
            ..ProptestConfig::default()
        };
        let mut count = 0;
        run_cases("ok", &cfg, |rng| {
            count += 1;
            let _ = rng.next_u64();
            (String::from("x = 1; "), Ok(()))
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn run_cases_reports_failing_case() {
        let cfg = ProptestConfig {
            cases: 5,
            ..ProptestConfig::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cases("bad", &cfg, |_rng| {
                let caught = std::panic::catch_unwind(|| panic!("boom"));
                (String::from("x = 3; "), caught.map(|_| ()))
            });
        }));
        let payload = result.expect_err("failing case must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("case 0/5"), "got: {msg}");
        assert!(msg.contains("x = 3"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }
}
